# Empty compiler generated dependencies file for optimization_ladder.
# This may be replaced when dependencies are built.
