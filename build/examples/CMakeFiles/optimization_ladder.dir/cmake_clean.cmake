file(REMOVE_RECURSE
  "CMakeFiles/optimization_ladder.dir/optimization_ladder.cpp.o"
  "CMakeFiles/optimization_ladder.dir/optimization_ladder.cpp.o.d"
  "optimization_ladder"
  "optimization_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
