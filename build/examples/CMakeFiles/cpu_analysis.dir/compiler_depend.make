# Empty compiler generated dependencies file for cpu_analysis.
# This may be replaced when dependencies are built.
