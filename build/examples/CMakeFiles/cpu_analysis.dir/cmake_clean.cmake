file(REMOVE_RECURSE
  "CMakeFiles/cpu_analysis.dir/cpu_analysis.cpp.o"
  "CMakeFiles/cpu_analysis.dir/cpu_analysis.cpp.o.d"
  "cpu_analysis"
  "cpu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
