# Empty dependencies file for matmul_prediction.
# This may be replaced when dependencies are built.
