file(REMOVE_RECURSE
  "CMakeFiles/matmul_prediction.dir/matmul_prediction.cpp.o"
  "CMakeFiles/matmul_prediction.dir/matmul_prediction.cpp.o.d"
  "matmul_prediction"
  "matmul_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
