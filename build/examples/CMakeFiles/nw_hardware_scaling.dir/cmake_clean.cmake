file(REMOVE_RECURSE
  "CMakeFiles/nw_hardware_scaling.dir/nw_hardware_scaling.cpp.o"
  "CMakeFiles/nw_hardware_scaling.dir/nw_hardware_scaling.cpp.o.d"
  "nw_hardware_scaling"
  "nw_hardware_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_hardware_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
