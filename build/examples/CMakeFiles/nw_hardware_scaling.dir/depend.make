# Empty dependencies file for nw_hardware_scaling.
# This may be replaced when dependencies are built.
