file(REMOVE_RECURSE
  "CMakeFiles/bf_test_linalg.dir/linalg_test.cpp.o"
  "CMakeFiles/bf_test_linalg.dir/linalg_test.cpp.o.d"
  "bf_test_linalg"
  "bf_test_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
