# Empty compiler generated dependencies file for bf_test_linalg.
# This may be replaced when dependencies are built.
