# Empty dependencies file for bf_test_properties.
# This may be replaced when dependencies are built.
