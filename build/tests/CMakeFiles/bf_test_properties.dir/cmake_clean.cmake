file(REMOVE_RECURSE
  "CMakeFiles/bf_test_properties.dir/atomics_serialization_test.cpp.o"
  "CMakeFiles/bf_test_properties.dir/atomics_serialization_test.cpp.o.d"
  "CMakeFiles/bf_test_properties.dir/engine_property_test.cpp.o"
  "CMakeFiles/bf_test_properties.dir/engine_property_test.cpp.o.d"
  "bf_test_properties"
  "bf_test_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
