file(REMOVE_RECURSE
  "CMakeFiles/bf_test_core.dir/core_test.cpp.o"
  "CMakeFiles/bf_test_core.dir/core_test.cpp.o.d"
  "CMakeFiles/bf_test_core.dir/paper_claims_test.cpp.o"
  "CMakeFiles/bf_test_core.dir/paper_claims_test.cpp.o.d"
  "bf_test_core"
  "bf_test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
