# Empty compiler generated dependencies file for bf_test_core.
# This may be replaced when dependencies are built.
