file(REMOVE_RECURSE
  "CMakeFiles/bf_test_gpusim.dir/engine_test.cpp.o"
  "CMakeFiles/bf_test_gpusim.dir/engine_test.cpp.o.d"
  "CMakeFiles/bf_test_gpusim.dir/gpusim_test.cpp.o"
  "CMakeFiles/bf_test_gpusim.dir/gpusim_test.cpp.o.d"
  "CMakeFiles/bf_test_gpusim.dir/power_test.cpp.o"
  "CMakeFiles/bf_test_gpusim.dir/power_test.cpp.o.d"
  "bf_test_gpusim"
  "bf_test_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
