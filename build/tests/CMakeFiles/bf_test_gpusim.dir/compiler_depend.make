# Empty compiler generated dependencies file for bf_test_gpusim.
# This may be replaced when dependencies are built.
