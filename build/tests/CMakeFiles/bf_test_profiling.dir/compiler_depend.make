# Empty compiler generated dependencies file for bf_test_profiling.
# This may be replaced when dependencies are built.
