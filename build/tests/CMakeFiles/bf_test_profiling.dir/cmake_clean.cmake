file(REMOVE_RECURSE
  "CMakeFiles/bf_test_profiling.dir/profiling_test.cpp.o"
  "CMakeFiles/bf_test_profiling.dir/profiling_test.cpp.o.d"
  "bf_test_profiling"
  "bf_test_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
