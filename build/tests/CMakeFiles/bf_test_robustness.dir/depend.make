# Empty dependencies file for bf_test_robustness.
# This may be replaced when dependencies are built.
