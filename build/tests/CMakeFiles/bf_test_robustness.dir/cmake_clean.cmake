file(REMOVE_RECURSE
  "CMakeFiles/bf_test_robustness.dir/robustness_test.cpp.o"
  "CMakeFiles/bf_test_robustness.dir/robustness_test.cpp.o.d"
  "bf_test_robustness"
  "bf_test_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
