# Empty compiler generated dependencies file for bf_test_ml.
# This may be replaced when dependencies are built.
