file(REMOVE_RECURSE
  "CMakeFiles/bf_test_ml.dir/baselines_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/baselines_test.cpp.o.d"
  "CMakeFiles/bf_test_ml.dir/dataset_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/dataset_test.cpp.o.d"
  "CMakeFiles/bf_test_ml.dir/forest_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/forest_test.cpp.o.d"
  "CMakeFiles/bf_test_ml.dir/glm_mars_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/glm_mars_test.cpp.o.d"
  "CMakeFiles/bf_test_ml.dir/pca_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/pca_test.cpp.o.d"
  "CMakeFiles/bf_test_ml.dir/tree_test.cpp.o"
  "CMakeFiles/bf_test_ml.dir/tree_test.cpp.o.d"
  "bf_test_ml"
  "bf_test_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
