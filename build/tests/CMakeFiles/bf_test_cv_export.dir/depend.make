# Empty dependencies file for bf_test_cv_export.
# This may be replaced when dependencies are built.
