file(REMOVE_RECURSE
  "CMakeFiles/bf_test_cv_export.dir/cv_export_test.cpp.o"
  "CMakeFiles/bf_test_cv_export.dir/cv_export_test.cpp.o.d"
  "bf_test_cv_export"
  "bf_test_cv_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_cv_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
