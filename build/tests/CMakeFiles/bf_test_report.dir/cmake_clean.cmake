file(REMOVE_RECURSE
  "CMakeFiles/bf_test_report.dir/report_test.cpp.o"
  "CMakeFiles/bf_test_report.dir/report_test.cpp.o.d"
  "bf_test_report"
  "bf_test_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
