# Empty compiler generated dependencies file for bf_test_report.
# This may be replaced when dependencies are built.
