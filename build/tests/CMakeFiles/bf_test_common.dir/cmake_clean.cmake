file(REMOVE_RECURSE
  "CMakeFiles/bf_test_common.dir/common_test.cpp.o"
  "CMakeFiles/bf_test_common.dir/common_test.cpp.o.d"
  "bf_test_common"
  "bf_test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
