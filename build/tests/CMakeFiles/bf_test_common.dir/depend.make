# Empty dependencies file for bf_test_common.
# This may be replaced when dependencies are built.
