file(REMOVE_RECURSE
  "CMakeFiles/bf_test_kernels.dir/kernels_test.cpp.o"
  "CMakeFiles/bf_test_kernels.dir/kernels_test.cpp.o.d"
  "CMakeFiles/bf_test_kernels.dir/spmv_test.cpp.o"
  "CMakeFiles/bf_test_kernels.dir/spmv_test.cpp.o.d"
  "bf_test_kernels"
  "bf_test_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
