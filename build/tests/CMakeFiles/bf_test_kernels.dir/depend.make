# Empty dependencies file for bf_test_kernels.
# This may be replaced when dependencies are built.
