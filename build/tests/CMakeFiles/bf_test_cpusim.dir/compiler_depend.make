# Empty compiler generated dependencies file for bf_test_cpusim.
# This may be replaced when dependencies are built.
