file(REMOVE_RECURSE
  "CMakeFiles/bf_test_cpusim.dir/cpusim_test.cpp.o"
  "CMakeFiles/bf_test_cpusim.dir/cpusim_test.cpp.o.d"
  "bf_test_cpusim"
  "bf_test_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_test_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
