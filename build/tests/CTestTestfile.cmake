# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bf_test_common "/root/repo/build/tests/bf_test_common")
set_tests_properties(bf_test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_linalg "/root/repo/build/tests/bf_test_linalg")
set_tests_properties(bf_test_linalg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_ml "/root/repo/build/tests/bf_test_ml")
set_tests_properties(bf_test_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_gpusim "/root/repo/build/tests/bf_test_gpusim")
set_tests_properties(bf_test_gpusim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_kernels "/root/repo/build/tests/bf_test_kernels")
set_tests_properties(bf_test_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_profiling "/root/repo/build/tests/bf_test_profiling")
set_tests_properties(bf_test_profiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_core "/root/repo/build/tests/bf_test_core")
set_tests_properties(bf_test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_report "/root/repo/build/tests/bf_test_report")
set_tests_properties(bf_test_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_cpusim "/root/repo/build/tests/bf_test_cpusim")
set_tests_properties(bf_test_cpusim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_cv_export "/root/repo/build/tests/bf_test_cv_export")
set_tests_properties(bf_test_cv_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_robustness "/root/repo/build/tests/bf_test_robustness")
set_tests_properties(bf_test_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bf_test_properties "/root/repo/build/tests/bf_test_properties")
set_tests_properties(bf_test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;bf_add_test;/root/repo/tests/CMakeLists.txt;0;")
