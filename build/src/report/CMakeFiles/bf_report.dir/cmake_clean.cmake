file(REMOVE_RECURSE
  "CMakeFiles/bf_report.dir/ascii.cpp.o"
  "CMakeFiles/bf_report.dir/ascii.cpp.o.d"
  "CMakeFiles/bf_report.dir/export.cpp.o"
  "CMakeFiles/bf_report.dir/export.cpp.o.d"
  "libbf_report.a"
  "libbf_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
