file(REMOVE_RECURSE
  "libbf_report.a"
)
