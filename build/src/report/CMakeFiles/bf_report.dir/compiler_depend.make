# Empty compiler generated dependencies file for bf_report.
# This may be replaced when dependencies are built.
