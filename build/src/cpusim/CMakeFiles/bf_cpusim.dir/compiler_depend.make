# Empty compiler generated dependencies file for bf_cpusim.
# This may be replaced when dependencies are built.
