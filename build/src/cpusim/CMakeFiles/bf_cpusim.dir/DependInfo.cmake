
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpusim/cpu_arch.cpp" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_arch.cpp.o" "gcc" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_arch.cpp.o.d"
  "/root/repo/src/cpusim/cpu_engine.cpp" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_engine.cpp.o" "gcc" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_engine.cpp.o.d"
  "/root/repo/src/cpusim/cpu_workloads.cpp" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_workloads.cpp.o" "gcc" "src/cpusim/CMakeFiles/bf_cpusim.dir/cpu_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/bf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
