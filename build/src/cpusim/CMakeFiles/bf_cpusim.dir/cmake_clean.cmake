file(REMOVE_RECURSE
  "CMakeFiles/bf_cpusim.dir/cpu_arch.cpp.o"
  "CMakeFiles/bf_cpusim.dir/cpu_arch.cpp.o.d"
  "CMakeFiles/bf_cpusim.dir/cpu_engine.cpp.o"
  "CMakeFiles/bf_cpusim.dir/cpu_engine.cpp.o.d"
  "CMakeFiles/bf_cpusim.dir/cpu_workloads.cpp.o"
  "CMakeFiles/bf_cpusim.dir/cpu_workloads.cpp.o.d"
  "libbf_cpusim.a"
  "libbf_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
