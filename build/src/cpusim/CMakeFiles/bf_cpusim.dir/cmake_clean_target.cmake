file(REMOVE_RECURSE
  "libbf_cpusim.a"
)
