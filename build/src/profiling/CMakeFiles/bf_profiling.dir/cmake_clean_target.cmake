file(REMOVE_RECURSE
  "libbf_profiling.a"
)
