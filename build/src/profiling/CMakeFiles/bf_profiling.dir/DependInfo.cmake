
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/counter_registry.cpp" "src/profiling/CMakeFiles/bf_profiling.dir/counter_registry.cpp.o" "gcc" "src/profiling/CMakeFiles/bf_profiling.dir/counter_registry.cpp.o.d"
  "/root/repo/src/profiling/profiler.cpp" "src/profiling/CMakeFiles/bf_profiling.dir/profiler.cpp.o" "gcc" "src/profiling/CMakeFiles/bf_profiling.dir/profiler.cpp.o.d"
  "/root/repo/src/profiling/repository.cpp" "src/profiling/CMakeFiles/bf_profiling.dir/repository.cpp.o" "gcc" "src/profiling/CMakeFiles/bf_profiling.dir/repository.cpp.o.d"
  "/root/repo/src/profiling/sweep.cpp" "src/profiling/CMakeFiles/bf_profiling.dir/sweep.cpp.o" "gcc" "src/profiling/CMakeFiles/bf_profiling.dir/sweep.cpp.o.d"
  "/root/repo/src/profiling/workloads.cpp" "src/profiling/CMakeFiles/bf_profiling.dir/workloads.cpp.o" "gcc" "src/profiling/CMakeFiles/bf_profiling.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/bf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
