file(REMOVE_RECURSE
  "CMakeFiles/bf_profiling.dir/counter_registry.cpp.o"
  "CMakeFiles/bf_profiling.dir/counter_registry.cpp.o.d"
  "CMakeFiles/bf_profiling.dir/profiler.cpp.o"
  "CMakeFiles/bf_profiling.dir/profiler.cpp.o.d"
  "CMakeFiles/bf_profiling.dir/repository.cpp.o"
  "CMakeFiles/bf_profiling.dir/repository.cpp.o.d"
  "CMakeFiles/bf_profiling.dir/sweep.cpp.o"
  "CMakeFiles/bf_profiling.dir/sweep.cpp.o.d"
  "CMakeFiles/bf_profiling.dir/workloads.cpp.o"
  "CMakeFiles/bf_profiling.dir/workloads.cpp.o.d"
  "libbf_profiling.a"
  "libbf_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
