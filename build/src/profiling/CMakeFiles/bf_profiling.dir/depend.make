# Empty dependencies file for bf_profiling.
# This may be replaced when dependencies are built.
