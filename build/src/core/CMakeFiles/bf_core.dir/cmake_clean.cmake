file(REMOVE_RECURSE
  "CMakeFiles/bf_core.dir/bottleneck.cpp.o"
  "CMakeFiles/bf_core.dir/bottleneck.cpp.o.d"
  "CMakeFiles/bf_core.dir/counter_models.cpp.o"
  "CMakeFiles/bf_core.dir/counter_models.cpp.o.d"
  "CMakeFiles/bf_core.dir/model.cpp.o"
  "CMakeFiles/bf_core.dir/model.cpp.o.d"
  "CMakeFiles/bf_core.dir/pca_refine.cpp.o"
  "CMakeFiles/bf_core.dir/pca_refine.cpp.o.d"
  "CMakeFiles/bf_core.dir/pipeline.cpp.o"
  "CMakeFiles/bf_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/bf_core.dir/predictor.cpp.o"
  "CMakeFiles/bf_core.dir/predictor.cpp.o.d"
  "libbf_core.a"
  "libbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
