
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bottleneck.cpp" "src/core/CMakeFiles/bf_core.dir/bottleneck.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/bottleneck.cpp.o.d"
  "/root/repo/src/core/counter_models.cpp" "src/core/CMakeFiles/bf_core.dir/counter_models.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/counter_models.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/bf_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/model.cpp.o.d"
  "/root/repo/src/core/pca_refine.cpp" "src/core/CMakeFiles/bf_core.dir/pca_refine.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/pca_refine.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/bf_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/bf_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/bf_core.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/bf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/bf_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bf_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
