# Empty compiler generated dependencies file for bf_linalg.
# This may be replaced when dependencies are built.
