file(REMOVE_RECURSE
  "libbf_linalg.a"
)
