file(REMOVE_RECURSE
  "CMakeFiles/bf_linalg.dir/eigen.cpp.o"
  "CMakeFiles/bf_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/bf_linalg.dir/matrix.cpp.o"
  "CMakeFiles/bf_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/bf_linalg.dir/solve.cpp.o"
  "CMakeFiles/bf_linalg.dir/solve.cpp.o.d"
  "libbf_linalg.a"
  "libbf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
