file(REMOVE_RECURSE
  "CMakeFiles/bf_gpusim.dir/arch.cpp.o"
  "CMakeFiles/bf_gpusim.dir/arch.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/cache.cpp.o"
  "CMakeFiles/bf_gpusim.dir/cache.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/coalescer.cpp.o"
  "CMakeFiles/bf_gpusim.dir/coalescer.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/counters.cpp.o"
  "CMakeFiles/bf_gpusim.dir/counters.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/engine.cpp.o"
  "CMakeFiles/bf_gpusim.dir/engine.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/bf_gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/power.cpp.o"
  "CMakeFiles/bf_gpusim.dir/power.cpp.o.d"
  "CMakeFiles/bf_gpusim.dir/sharedmem.cpp.o"
  "CMakeFiles/bf_gpusim.dir/sharedmem.cpp.o.d"
  "libbf_gpusim.a"
  "libbf_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
