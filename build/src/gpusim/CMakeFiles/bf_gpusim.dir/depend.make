# Empty dependencies file for bf_gpusim.
# This may be replaced when dependencies are built.
