file(REMOVE_RECURSE
  "libbf_gpusim.a"
)
