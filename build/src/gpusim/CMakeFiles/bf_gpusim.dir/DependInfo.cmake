
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/arch.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/arch.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/arch.cpp.o.d"
  "/root/repo/src/gpusim/cache.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/cache.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/cache.cpp.o.d"
  "/root/repo/src/gpusim/coalescer.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/coalescer.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/coalescer.cpp.o.d"
  "/root/repo/src/gpusim/counters.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/counters.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/counters.cpp.o.d"
  "/root/repo/src/gpusim/engine.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/engine.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/engine.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/occupancy.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/power.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/power.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/power.cpp.o.d"
  "/root/repo/src/gpusim/sharedmem.cpp" "src/gpusim/CMakeFiles/bf_gpusim.dir/sharedmem.cpp.o" "gcc" "src/gpusim/CMakeFiles/bf_gpusim.dir/sharedmem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
