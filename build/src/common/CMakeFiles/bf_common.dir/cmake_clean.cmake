file(REMOVE_RECURSE
  "CMakeFiles/bf_common.dir/csv.cpp.o"
  "CMakeFiles/bf_common.dir/csv.cpp.o.d"
  "CMakeFiles/bf_common.dir/log.cpp.o"
  "CMakeFiles/bf_common.dir/log.cpp.o.d"
  "CMakeFiles/bf_common.dir/string_util.cpp.o"
  "CMakeFiles/bf_common.dir/string_util.cpp.o.d"
  "CMakeFiles/bf_common.dir/thread_pool.cpp.o"
  "CMakeFiles/bf_common.dir/thread_pool.cpp.o.d"
  "libbf_common.a"
  "libbf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
