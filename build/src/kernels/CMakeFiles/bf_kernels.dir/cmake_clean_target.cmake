file(REMOVE_RECURSE
  "libbf_kernels.a"
)
