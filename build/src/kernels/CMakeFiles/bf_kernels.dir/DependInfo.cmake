
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/matmul.cpp" "src/kernels/CMakeFiles/bf_kernels.dir/matmul.cpp.o" "gcc" "src/kernels/CMakeFiles/bf_kernels.dir/matmul.cpp.o.d"
  "/root/repo/src/kernels/misc.cpp" "src/kernels/CMakeFiles/bf_kernels.dir/misc.cpp.o" "gcc" "src/kernels/CMakeFiles/bf_kernels.dir/misc.cpp.o.d"
  "/root/repo/src/kernels/nw.cpp" "src/kernels/CMakeFiles/bf_kernels.dir/nw.cpp.o" "gcc" "src/kernels/CMakeFiles/bf_kernels.dir/nw.cpp.o.d"
  "/root/repo/src/kernels/reduce.cpp" "src/kernels/CMakeFiles/bf_kernels.dir/reduce.cpp.o" "gcc" "src/kernels/CMakeFiles/bf_kernels.dir/reduce.cpp.o.d"
  "/root/repo/src/kernels/spmv.cpp" "src/kernels/CMakeFiles/bf_kernels.dir/spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/bf_kernels.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/bf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
