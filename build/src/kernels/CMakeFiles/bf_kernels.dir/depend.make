# Empty dependencies file for bf_kernels.
# This may be replaced when dependencies are built.
