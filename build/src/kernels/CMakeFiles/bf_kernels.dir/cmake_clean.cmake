file(REMOVE_RECURSE
  "CMakeFiles/bf_kernels.dir/matmul.cpp.o"
  "CMakeFiles/bf_kernels.dir/matmul.cpp.o.d"
  "CMakeFiles/bf_kernels.dir/misc.cpp.o"
  "CMakeFiles/bf_kernels.dir/misc.cpp.o.d"
  "CMakeFiles/bf_kernels.dir/nw.cpp.o"
  "CMakeFiles/bf_kernels.dir/nw.cpp.o.d"
  "CMakeFiles/bf_kernels.dir/reduce.cpp.o"
  "CMakeFiles/bf_kernels.dir/reduce.cpp.o.d"
  "CMakeFiles/bf_kernels.dir/spmv.cpp.o"
  "CMakeFiles/bf_kernels.dir/spmv.cpp.o.d"
  "libbf_kernels.a"
  "libbf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
