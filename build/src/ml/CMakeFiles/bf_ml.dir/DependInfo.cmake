
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cv.cpp" "src/ml/CMakeFiles/bf_ml.dir/cv.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/cv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/bf_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/bf_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/linear_model.cpp" "src/ml/CMakeFiles/bf_ml.dir/linear_model.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/linear_model.cpp.o.d"
  "/root/repo/src/ml/mars.cpp" "src/ml/CMakeFiles/bf_ml.dir/mars.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/mars.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/bf_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_pool.cpp" "src/ml/CMakeFiles/bf_ml.dir/model_pool.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/model_pool.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/bf_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/stepwise.cpp" "src/ml/CMakeFiles/bf_ml.dir/stepwise.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/stepwise.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/bf_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/bf_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/bf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
