# Empty dependencies file for bf_ml.
# This may be replaced when dependencies are built.
