file(REMOVE_RECURSE
  "libbf_ml.a"
)
