file(REMOVE_RECURSE
  "CMakeFiles/bf_ml.dir/cv.cpp.o"
  "CMakeFiles/bf_ml.dir/cv.cpp.o.d"
  "CMakeFiles/bf_ml.dir/dataset.cpp.o"
  "CMakeFiles/bf_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/bf_ml.dir/forest.cpp.o"
  "CMakeFiles/bf_ml.dir/forest.cpp.o.d"
  "CMakeFiles/bf_ml.dir/linear_model.cpp.o"
  "CMakeFiles/bf_ml.dir/linear_model.cpp.o.d"
  "CMakeFiles/bf_ml.dir/mars.cpp.o"
  "CMakeFiles/bf_ml.dir/mars.cpp.o.d"
  "CMakeFiles/bf_ml.dir/metrics.cpp.o"
  "CMakeFiles/bf_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/bf_ml.dir/model_pool.cpp.o"
  "CMakeFiles/bf_ml.dir/model_pool.cpp.o.d"
  "CMakeFiles/bf_ml.dir/pca.cpp.o"
  "CMakeFiles/bf_ml.dir/pca.cpp.o.d"
  "CMakeFiles/bf_ml.dir/stepwise.cpp.o"
  "CMakeFiles/bf_ml.dir/stepwise.cpp.o.d"
  "CMakeFiles/bf_ml.dir/tree.cpp.o"
  "CMakeFiles/bf_ml.dir/tree.cpp.o.d"
  "libbf_ml.a"
  "libbf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
