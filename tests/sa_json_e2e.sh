#!/bin/sh
# End-to-end contract for `bf_lint --json`: run the analyzer over the
# fixture corpus (one seeded violation per rule), and validate the JSON
# document it emits — structural fields, one entry per seeded rule, and
# (when python3 is available) a strict parse. The companion gtest
# (tests/sa_test.cpp, JsonRoundTrip) parses the same document with the
# project's own JSON reader.
#
# usage: sa_json_e2e.sh <bf_lint-binary> <corpus-dir>
set -e

BF_LINT="$1"
CORPUS="$2"
[ -x "$BF_LINT" ] || { echo "no bf_lint binary: $BF_LINT"; exit 2; }
[ -d "$CORPUS" ] || { echo "no corpus dir: $CORPUS"; exit 2; }

OUT_DIR="${TMPDIR:-/tmp}/bf_sa_e2e.$$"
mkdir -p "$OUT_DIR"
trap 'rm -rf "$OUT_DIR"' EXIT
JSON="$OUT_DIR/findings.json"

# The corpus is seeded with violations, so the exit code must be 1
# (findings) — not 0 (clean) and not 2 (usage/IO error).
rc=0
"$BF_LINT" --json "$JSON" "$CORPUS" > "$OUT_DIR/text.out" || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 on seeded corpus, got $rc"; exit 1; }
[ -s "$JSON" ] || { echo "JSON output file is empty"; exit 1; }

# Structural fields of the document.
for field in '"tool": "bf_lint"' '"schema_version": 1' '"files_scanned"' \
             '"suppressed"' '"baselined"' '"findings"'; do
  grep -q "$field" "$JSON" || { echo "missing field: $field"; exit 1; }
done

# One finding per seeded rule.
for rule in pragma-once raw-new raw-delete no-rand float-literal \
            unchecked-parse atomic-write guarded-predict artifact-version \
            include-cycle layer-dag duplicate-include capture-escape \
            mutable-global lock-order unused-suppression flat-predict \
            registry-swap; do
  grep -q "\"rule\": \"$rule\"" "$JSON" || {
    echo "seeded rule missing from JSON: $rule"; exit 1; }
done

# Every finding carries file/line/severity/key/message.
findings=$(grep -c '"rule": ' "$JSON")
for field in '"file": ' '"line": ' '"severity": ' '"key": ' '"message": '; do
  n=$(grep -c "$field" "$JSON")
  [ "$n" -eq "$findings" ] || {
    echo "field $field on $n of $findings findings"; exit 1; }
done

# The text rendering and the JSON must agree on the violation count.
text_count=$(sed -n 's/^bf_lint: \([0-9]*\) violation(s).*/\1/p' "$OUT_DIR/text.out")
[ "$findings" = "$text_count" ] || {
  echo "JSON has $findings findings, text reports $text_count"; exit 1; }

# Strict parse when an interpreter is around (CI always has one).
if command -v python3 > /dev/null 2>&1; then
  python3 - "$JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["tool"] == "bf_lint" and doc["schema_version"] == 1
assert doc["files_scanned"] > 0 and len(doc["findings"]) > 0
for f in doc["findings"]:
    assert set(f) == {"file", "line", "rule", "severity", "key", "message"}
    assert f["severity"] in ("error", "warning")
    assert f["key"].startswith(f["rule"] + "|" + f["file"] + "|")
EOF
fi

# stale-baseline / baseline-format: a baseline with one matching entry
# (justified), one stale entry and one entry missing its justification.
BASE="$OUT_DIR/baseline"
cat > "$BASE" <<'EOF'
raw-new|src/common/banned.cpp|  # seeded fixture violation, grandfathered for this test
no-rand|src/does/not/exist.cpp|  # stale: matches nothing
raw-delete|src/common/banned.cpp|
EOF
rc=0
"$BF_LINT" --baseline "$BASE" --json "$JSON" "$CORPUS" > "$OUT_DIR/text2.out" || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 with baseline, got $rc"; exit 1; }
grep -q '"rule": "stale-baseline"' "$JSON" || {
  echo "stale baseline entry not reported"; exit 1; }
grep -q '"rule": "baseline-format"' "$JSON" || {
  echo "unjustified baseline entry not reported"; exit 1; }
grep -q '"baselined": 2' "$JSON" || {
  echo "expected 2 baselined findings"; exit 1; }
if grep -q '"rule": "raw-new"' "$JSON"; then
  echo "baselined raw-new finding still present"; exit 1
fi

echo "sa_json_e2e: ok"
