// Tests for the random-forest regressor: OOB statistics, permutation
// importance, partial dependence, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

/// Synthetic regression problem: y = 5*x0 + noise; x1 is pure noise.
struct Synthetic {
  linalg::Matrix x;
  std::vector<double> y;
};

Synthetic make_synthetic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic s{linalg::Matrix(n, 2), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    s.x(i, 0) = rng.uniform(0, 10);
    s.x(i, 1) = rng.uniform(0, 10);
    s.y[i] = 5.0 * s.x(i, 0) + rng.normal(0.0, 0.5);
  }
  return s;
}

ForestParams fast_params() {
  ForestParams p;
  p.n_trees = 80;
  p.seed = 77;
  return p;
}

TEST(RandomForest, FitsSignalWell) {
  const auto data = make_synthetic(200, 1);
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, fast_params());
  EXPECT_GT(rf.pct_var_explained(), 90.0);
  const auto pred = rf.predict(data.x);
  EXPECT_GT(r2(data.y, pred), 0.97);
}

TEST(RandomForest, PredictionsBoundedByResponseRange) {
  const auto data = make_synthetic(150, 2);
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, fast_params());
  const auto [lo, hi] = std::minmax_element(data.y.begin(), data.y.end());
  // Tree leaves average training responses, so forest output can never
  // leave the observed range — the RF extrapolation property the paper's
  // hardware-scaling section wrestles with.
  linalg::Matrix probe(1, 2);
  probe(0, 0) = 100.0;  // far outside training range
  probe(0, 1) = -50.0;
  const double far = rf.predict(probe)[0];
  EXPECT_GE(far, *lo);
  EXPECT_LE(far, *hi);
}

TEST(RandomForest, ImportanceRanksSignalAboveNoise) {
  const auto data = make_synthetic(200, 3);
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, fast_params());
  const auto imp = rf.importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_EQ(imp[0].name, "signal");
  EXPECT_GT(imp[0].pct_inc_mse, imp[1].pct_inc_mse);
  EXPECT_GT(imp[0].mean_inc_mse, 0.0);
  EXPECT_GT(imp[0].inc_node_purity, imp[1].inc_node_purity);
}

TEST(RandomForest, TopVariables) {
  const auto data = make_synthetic(150, 4);
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, fast_params());
  const auto top = rf.top_variables(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], "signal");
  EXPECT_EQ(rf.top_variables(10).size(), 2u);
}

TEST(RandomForest, ImportanceDisabledThrows) {
  const auto data = make_synthetic(60, 5);
  ForestParams p = fast_params();
  p.importance = false;
  RandomForest rf;
  rf.fit(data.x, data.y, {"a", "b"}, p);
  EXPECT_THROW(rf.importance(), Error);
}

TEST(RandomForest, OobPredictionsCoverMostRows) {
  const auto data = make_synthetic(100, 6);
  RandomForest rf;
  rf.fit(data.x, data.y, {"a", "b"}, fast_params());
  const auto& oob = rf.oob_predictions();
  ASSERT_EQ(oob.size(), 100u);
  std::size_t covered = 0;
  for (const double v : oob) {
    if (!std::isnan(v)) ++covered;
  }
  // With 80 trees each row is OOB for ~37% of trees.
  EXPECT_EQ(covered, 100u);
  EXPECT_GT(rf.oob_mse(), 0.0);
}

TEST(RandomForest, DeterministicForSeed) {
  const auto data = make_synthetic(80, 7);
  RandomForest a;
  RandomForest b;
  a.fit(data.x, data.y, {"s", "n"}, fast_params());
  b.fit(data.x, data.y, {"s", "n"}, fast_params());
  linalg::Matrix probe(1, 2);
  probe(0, 0) = 3.0;
  probe(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.predict(probe)[0], b.predict(probe)[0]);
  EXPECT_DOUBLE_EQ(a.oob_mse(), b.oob_mse());
  const auto ia = a.importance();
  const auto ib = b.importance();
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].name, ib[i].name);
    EXPECT_DOUBLE_EQ(ia[i].pct_inc_mse, ib[i].pct_inc_mse);
  }
}

TEST(RandomForest, ThreadedTrainingMatchesSerial) {
  const auto data = make_synthetic(80, 8);
  ForestParams serial = fast_params();
  ForestParams threaded = fast_params();
  threaded.threads = 4;
  RandomForest a;
  RandomForest b;
  a.fit(data.x, data.y, {"s", "n"}, serial);
  b.fit(data.x, data.y, {"s", "n"}, threaded);
  // Per-tree RNGs are derived before dispatch, so the forests must be
  // identical regardless of the thread count.
  EXPECT_DOUBLE_EQ(a.oob_mse(), b.oob_mse());
  linalg::Matrix probe(1, 2);
  probe(0, 0) = 5.0;
  probe(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(a.predict(probe)[0], b.predict(probe)[0]);
}

TEST(RandomForest, PartialDependenceTracksMonotoneSignal) {
  const auto data = make_synthetic(200, 9);
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, fast_params());
  const auto curve = rf.partial_dependence("signal", 15);
  ASSERT_EQ(curve.size(), 15u);
  // y rises with the signal: the curve must increase overall.
  EXPECT_GT(curve.back().y, curve.front().y + 10.0);
  // Grid spans the observed feature range.
  EXPECT_NEAR(curve.front().x, 0.0, 0.5);
  EXPECT_NEAR(curve.back().x, 10.0, 0.5);
  // Noise has a comparatively flat curve.
  const auto flat = rf.partial_dependence("noise", 15);
  const double signal_span =
      std::fabs(curve.back().y - curve.front().y);
  double flat_span = 0.0;
  for (const auto& p : flat) {
    flat_span = std::max(flat_span, std::fabs(p.y - flat.front().y));
  }
  EXPECT_LT(flat_span, 0.25 * signal_span);
}

TEST(RandomForest, PartialDependenceUnknownFeatureThrows) {
  const auto data = make_synthetic(60, 10);
  RandomForest rf;
  rf.fit(data.x, data.y, {"a", "b"}, fast_params());
  EXPECT_THROW(rf.partial_dependence("zzz"), Error);
}

TEST(RandomForest, InputValidation) {
  RandomForest rf;
  linalg::Matrix x(4, 2);
  const std::vector<double> y{1, 2, 3};
  EXPECT_THROW(rf.fit(x, y, {"a", "b"}, fast_params()), Error);
  const std::vector<double> y4{1, 2, 3, 4};
  EXPECT_THROW(rf.fit(x, y4, {"a"}, fast_params()), Error);
  EXPECT_THROW(rf.predict(x), Error);  // unfitted
}

class ForestParamSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ForestParamSweep, OobErrorReasonableAcrossParams) {
  const auto [n_trees, mtry] = GetParam();
  const auto data = make_synthetic(150, 11);
  ForestParams p;
  p.n_trees = n_trees;
  p.mtry = mtry;
  p.seed = 31;
  RandomForest rf;
  rf.fit(data.x, data.y, {"signal", "noise"}, p);
  // Even modest forests explain the dominant linear signal.
  EXPECT_GT(rf.pct_var_explained(), 75.0);
  // OOB MSE is on the scale of the noise, far below response variance.
  EXPECT_LT(rf.oob_mse(), variance(data.y) * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Params, ForestParamSweep,
    ::testing::Combine(::testing::Values(25u, 100u, 300u),
                       ::testing::Values(0u, 1u, 2u)));

class ForestTreeGrowth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestTreeGrowth, MoreTreesNeverExplode) {
  const auto data = make_synthetic(100, 12);
  ForestParams p;
  p.n_trees = GetParam();
  p.seed = 5;
  RandomForest rf;
  rf.fit(data.x, data.y, {"s", "n"}, p);
  EXPECT_EQ(rf.n_trees(), GetParam());
  EXPECT_LT(rf.oob_mse(), variance(data.y));
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestTreeGrowth,
                         ::testing::Values(1u, 5u, 50u, 200u));

}  // namespace
}  // namespace bf::ml
