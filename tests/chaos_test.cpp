// Chaos suite: the pipeline under deterministic fault injection.
//
// Exercises bf::fault end to end — registry semantics, the sweep failure
// policy (retry/replicates/partial results), missing-value resolution,
// repository storage faults — and the headline robustness property: an
// analysis under 5% crash + 5% counter-dropout faults completes and ranks
// the same top bottleneck counters as the fault-free run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "gpusim/arch.hpp"
#include "guard/guard.hpp"
#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "profiling/repository.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"
#include "net_test_util.hpp"
#include "serve/artifact.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace bf {
namespace {

namespace fs = std::filesystem;

// Every test disarms on entry and exit so a failure cannot leak armed
// faults into neighbouring cases (the registry is process-global).
class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

std::vector<double> test_sizes() {
  return {16384, 32768, 65536, 131072, 262144, 524288};
}

ml::Dataset run_sweep(const profiling::SweepOptions& options,
                      profiling::SweepReport* report = nullptr) {
  const profiling::Workload workload =
      profiling::workload_by_name("reduce1");
  const gpusim::Device device(gpusim::arch_by_name("gtx580"));
  return profiling::sweep(workload, device, test_sizes(), options, report);
}

std::string csv_text(const ml::Dataset& ds) {
  std::ostringstream os;
  ds.to_csv().write(os);
  return os.str();
}

// ---- registry semantics ----

TEST_F(Chaos, UnarmedRegistryIsInert) {
  EXPECT_FALSE(fault::active());
  EXPECT_FALSE(fault::should_fire(fault::points::kProfilerRunCrash));
  EXPECT_EQ(fault::stats(fault::points::kProfilerRunCrash).evaluated, 0u);
  EXPECT_EQ(fault::summary(), "fault injection: off");
}

TEST_F(Chaos, RateOneAlwaysFiresRateZeroNeverDoes) {
  fault::arm("p.always", 1.0);
  fault::arm("p.never", 0.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fault::should_fire("p.always"));
    EXPECT_FALSE(fault::should_fire("p.never"));
  }
  EXPECT_EQ(fault::stats("p.always").fired, 20u);
  EXPECT_EQ(fault::stats("p.never").fired, 0u);
  EXPECT_EQ(fault::stats("p.never").evaluated, 20u);
}

TEST_F(Chaos, MaxFiresCapsThePoint) {
  fault::arm("p.capped", 1.0, 3);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault::should_fire("p.capped")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fault::stats("p.capped").evaluated, 10u);
}

TEST_F(Chaos, SameSeedSameSpecSameFireSequence) {
  const auto draw = [](std::uint64_t seed) {
    fault::reseed(seed);
    fault::configure("p.a:0.3");
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(fault::should_fire("p.a"));
    return fires;
  };
  const auto first = draw(42);
  const auto again = draw(42);
  const auto other = draw(43);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
}

TEST_F(Chaos, PointStreamsAreIndependent) {
  // The fire sequence of p.a must not change when another point is armed
  // and evaluated between its draws.
  fault::reseed(7);
  fault::configure("p.a:0.5");
  std::vector<bool> alone;
  for (int i = 0; i < 100; ++i) alone.push_back(fault::should_fire("p.a"));

  fault::reseed(7);
  fault::configure("p.a:0.5,p.b:0.5");
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    (void)fault::should_fire("p.b");
    interleaved.push_back(fault::should_fire("p.a"));
    (void)fault::should_fire("p.b");
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(Chaos, MalformedSpecsThrow) {
  EXPECT_THROW(fault::configure("nocolon"), Error);
  EXPECT_THROW(fault::configure("p.a:notanumber"), Error);
  EXPECT_THROW(fault::configure("p.a:1.5"), Error);   // rate out of range
  EXPECT_THROW(fault::configure("p.a:-0.1"), Error);
  EXPECT_THROW(fault::configure("p.a:0.5:2:9"), Error);  // too many fields
  EXPECT_THROW(fault::configure(":0.5"), Error);  // empty point name
}

TEST_F(Chaos, SpecWhitespaceAndEmptyEntriesTolerated) {
  fault::configure(" p.a : 0.5 : 2 , , p.b:1 ");
  EXPECT_TRUE(fault::active());
  EXPECT_TRUE(fault::should_fire("p.b"));
  const auto all = fault::all_stats();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "p.a");
  EXPECT_EQ(all[1].first, "p.b");
}

TEST_F(Chaos, ResetDisarmsEverything) {
  fault::configure("p.a:1");
  ASSERT_TRUE(fault::should_fire("p.a"));
  fault::reset();
  EXPECT_FALSE(fault::active());
  EXPECT_FALSE(fault::should_fire("p.a"));
}

TEST_F(Chaos, EnvironmentConfigurationWorks) {
  ASSERT_EQ(setenv("BF_FAULTS", "p.env:1.0:2", 1), 0);
  ASSERT_EQ(setenv("BF_FAULT_SEED", "99", 1), 0);
  fault::configure_from_env();
  unsetenv("BF_FAULTS");
  unsetenv("BF_FAULT_SEED");
  EXPECT_TRUE(fault::active());
  EXPECT_TRUE(fault::should_fire("p.env"));
  EXPECT_TRUE(fault::should_fire("p.env"));
  EXPECT_FALSE(fault::should_fire("p.env"));  // max_fires reached
}

// ---- zero cost when off ----

TEST_F(Chaos, FaultFreeSweepIsBitIdenticalToDisarmedSweep) {
  const profiling::SweepOptions options;
  const std::string off = csv_text(run_sweep(options));

  // Armed-but-rate-zero exercises every injection-point call site without
  // firing; the dataset must be byte-for-byte identical.
  fault::configure("profiler.run_crash:0,profiler.counter_dropout:0");
  const std::string armed_zero = csv_text(run_sweep(options));
  EXPECT_EQ(off, armed_zero);
  // The points were really evaluated (one crash check per run).
  EXPECT_GE(fault::stats(fault::points::kProfilerRunCrash).evaluated,
            test_sizes().size());
}

// ---- sweep failure policy ----

TEST_F(Chaos, RetryRecoversFromTransientCrashes) {
  fault::reseed(42);
  fault::configure("profiler.run_crash:0.4");
  profiling::SweepOptions options;
  options.max_attempts = 10;
  profiling::SweepReport report;
  const ml::Dataset ds = run_sweep(options, &report);

  EXPECT_EQ(ds.num_rows(), test_sizes().size());
  EXPECT_EQ(report.sizes_ok, test_sizes().size());
  EXPECT_EQ(report.sizes_failed, 0u);
  EXPECT_GT(report.retried_attempts, 0u);  // faults actually fired
  EXPECT_TRUE(report.degraded());
}

TEST_F(Chaos, CounterDropoutBecomesNaNCells) {
  fault::reseed(42);
  fault::configure("profiler.counter_dropout:0.2");
  profiling::SweepReport report;
  const ml::Dataset ds = run_sweep({}, &report);

  EXPECT_EQ(ds.num_rows(), test_sizes().size());
  EXPECT_TRUE(ds.has_missing());
  EXPECT_EQ(ds.missing_count(), report.missing_cells);
  EXPECT_GT(report.missing_cells, 0u);
  // The response and the problem size are never dropped by this point.
  for (const double t : ds.column(profiling::kTimeColumn)) {
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_F(Chaos, PartialSweepPolicyKeepsSurvivingSizes) {
  // The first three sizes crash hard (no retry); the rest succeed.
  fault::configure("profiler.run_crash:1.0:3");
  profiling::SweepOptions options;
  options.max_attempts = 1;
  options.min_success_fraction = 0.5;
  profiling::SweepReport report;
  const ml::Dataset ds = run_sweep(options, &report);

  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(report.sizes_ok, 3u);
  EXPECT_EQ(report.sizes_failed, 3u);
  ASSERT_EQ(report.sizes.size(), 6u);
  EXPECT_FALSE(report.sizes[0].ok);
  EXPECT_EQ(report.sizes[0].errors.size(), 1u);
  EXPECT_TRUE(report.sizes[5].ok);

  // A stricter policy refuses the same partial result.
  fault::reset();
  fault::configure("profiler.run_crash:1.0:3");
  options.min_success_fraction = 0.9;
  EXPECT_THROW(run_sweep(options), Error);
}

TEST_F(Chaos, MedianOfReplicatesAbsorbsNoiseSpikes) {
  const ml::Dataset clean = run_sweep({});

  // One replicate per size spikes 4x; the median over 5 replicates must
  // stay within ordinary run-to-run measurement noise of the clean sweep
  // (a leaked spike would inflate the row by ~60%).
  fault::configure("profiler.noise_spike:0.2");
  profiling::SweepOptions options;
  options.replicates = 5;
  const ml::Dataset ds = run_sweep(options);

  ASSERT_EQ(ds.num_rows(), clean.num_rows());
  const auto& spiked_t = ds.column(profiling::kTimeColumn);
  const auto& clean_t = clean.column(profiling::kTimeColumn);
  for (std::size_t i = 0; i < clean_t.size(); ++i) {
    EXPECT_NEAR(spiked_t[i], clean_t[i], 0.05 * clean_t[i])
        << "row " << i;
  }
}

TEST_F(Chaos, PowerLabelSpikeInflatesExactlyOneLabel) {
  const ml::Dataset clean = run_sweep({});

  // A single power-rail sensor glitch (rate 1, one fire): only the first
  // size's power label is hit, and the fault path multiplies the jittered
  // label bit-exactly by 5. Every other cell is untouched — the fault
  // registry draws from its own stream, not the profiler's.
  fault::configure("power.label.spike:1.0:1");
  const ml::Dataset spiked = run_sweep({});

  ASSERT_EQ(spiked.num_rows(), clean.num_rows());
  const auto& clean_p = clean.column(profiling::kPowerColumn);
  const auto& spiked_p = spiked.column(profiling::kPowerColumn);
  EXPECT_EQ(spiked_p[0], 5.0 * clean_p[0]);
  for (std::size_t i = 1; i < clean_p.size(); ++i) {
    EXPECT_EQ(spiked_p[i], clean_p[i]) << "row " << i;
  }
  const auto& clean_t = clean.column(profiling::kTimeColumn);
  const auto& spiked_t = spiked.column(profiling::kTimeColumn);
  for (std::size_t i = 0; i < clean_t.size(); ++i) {
    EXPECT_EQ(spiked_t[i], clean_t[i]) << "row " << i;
  }
}

TEST_F(Chaos, MedianOfReplicatesRejectsPowerLabelSpike) {
  profiling::SweepOptions options;
  options.replicates = 3;
  // Keep all three replicates: time-MAD rejection can drop one (the
  // times differ only by tiny noise, so the MAD cut is arbitrary) and a
  // two-element median averages — which would let half the spike leak.
  options.outlier_mad_threshold = 0.0;
  const ml::Dataset clean = run_sweep(options);

  // The glitch hits one replicate of the first size; a 5x outlier is the
  // maximum of three, so the per-cell median discards it — the spike may
  // shift which clean replicate supplies the middle power value, but the
  // aggregate stays within run-to-run noise (a leak would be ~+130%).
  fault::configure("power.label.spike:1.0:1");
  const ml::Dataset spiked = run_sweep(options);
  ASSERT_EQ(spiked.num_rows(), clean.num_rows());
  for (const auto& name : clean.column_names()) {
    const auto& c = clean.column(name);
    const auto& s = spiked.column(name);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (name == profiling::kPowerColumn) {
        EXPECT_NEAR(s[i], c[i], 0.02 * c[i]) << name << " row " << i;
      } else {
        EXPECT_EQ(s[i], c[i]) << name << " row " << i;
      }
    }
  }

  // And the rejected label would have been physically impossible: the
  // aggregated power column stays inside the board envelope.
  const auto arch = gpusim::arch_by_name("gtx580");
  for (const double w : spiked.column(profiling::kPowerColumn)) {
    EXPECT_GE(w, arch.idle_w * 0.5);
    EXPECT_LE(w, arch.tdp_w * 1.05);
  }
}

TEST_F(Chaos, SweepReportIsDeterministic) {
  const auto collect = [] {
    fault::reseed(1234);
    fault::configure(
        "profiler.run_crash:0.2,profiler.counter_dropout:0.1");
    profiling::SweepOptions options;
    options.max_attempts = 5;
    options.min_success_fraction = 0.5;
    profiling::SweepReport report;
    const ml::Dataset ds = run_sweep(options, &report);
    return csv_text(ds) + "\n" + report.to_text();
  };
  EXPECT_EQ(collect(), collect());
}

// ---- degraded data through the statistical stages ----

TEST_F(Chaos, ResolveMissingRepairsDropoutDamage) {
  fault::reseed(42);
  fault::configure("profiler.counter_dropout:0.2");
  ml::Dataset ds = run_sweep({});
  fault::reset();
  ASSERT_TRUE(ds.has_missing());

  const ml::MissingValueReport report = ds.resolve_missing(
      0.5, 0.5, {profiling::kTimeColumn, profiling::kSizeColumn});
  EXPECT_FALSE(ds.has_missing());
  EXPECT_FALSE(report.empty());
  EXPECT_FALSE(report.to_lines().empty());
  EXPECT_TRUE(ds.has_column(profiling::kTimeColumn));
  EXPECT_TRUE(ds.has_column(profiling::kSizeColumn));
}

// ---- repository storage faults ----

class ChaosRepo : public Chaos {
 protected:
  void SetUp() override {
    Chaos::SetUp();
    dir_ = fs::temp_directory_path() /
           ("bf_chaos_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    Chaos::TearDown();
  }

  ml::Dataset small_dataset() const {
    ml::Dataset ds;
    ds.add_column("size", {64, 128, 256});
    ds.add_column("time_ms", {1.0, 2.0, 4.0});
    return ds;
  }

  fs::path dir_;
};

TEST_F(ChaosRepo, TornWriteIsQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  fault::configure("repo.torn_write:1.0:1");
  repo.save("needle", "gtx580", small_dataset());
  fault::reset();

  // The entry on disk is truncated; the checksum footer catches it.
  EXPECT_FALSE(repo.load("needle", "gtx580").has_value());
  EXPECT_TRUE(fs::exists(dir_ / "needle__gtx580.csv.quarantined"));

  int produced = 0;
  const auto ds = repo.get_or_collect("needle", "gtx580", [&] {
    ++produced;
    return small_dataset();
  });
  EXPECT_EQ(produced, 1);
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(repo.load("needle", "gtx580")->num_rows(), 3u);
}

TEST_F(ChaosRepo, BitrotIsCaughtByTheChecksum) {
  const profiling::RunRepository repo(dir_.string());
  fault::configure("repo.bitrot:1.0:1");
  repo.save("needle", "gtx580", small_dataset());
  fault::reset();

  EXPECT_FALSE(repo.load("needle", "gtx580").has_value());
  EXPECT_TRUE(fs::exists(dir_ / "needle__gtx580.csv.quarantined"));
}

TEST_F(ChaosRepo, UnarmedSaveLoadRoundTripsExactly) {
  const profiling::RunRepository repo(dir_.string());
  repo.save("needle", "gtx580", small_dataset());
  const auto loaded = repo.load("needle", "gtx580");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(csv_text(*loaded), csv_text(small_dataset()));
}

// ---- the headline property ----

core::PipelineConfig reduce1_config() {
  core::PipelineConfig config;
  config.workload = profiling::workload_by_name("reduce1");
  config.arch = gpusim::arch_by_name("gtx580");
  config.sizes = profiling::log2_sizes(1 << 14, 1 << 24, 40, 256);
  config.model.forest.n_trees = 300;
  // The robustness policy a production collection would run with:
  // 3 replicates per size (so a single dropped-out replicate is healed
  // by the median instead of imputed) and a 50% partial-sweep floor.
  config.sweep.replicates = 3;
  config.sweep.min_success_fraction = 0.5;
  return config;
}

std::vector<std::string> top_counters(const core::AnalysisOutcome& outcome,
                                      std::size_t k) {
  std::vector<std::string> names;
  const auto& findings = outcome.report.findings;  // importance-ordered
  for (std::size_t i = 0; i < findings.size() && i < k; ++i) {
    names.push_back(findings[i].counter);
  }
  return names;
}

std::vector<core::Pattern> top_patterns(
    const core::AnalysisOutcome& outcome, std::size_t k) {
  std::vector<core::Pattern> patterns;
  const auto& ranked = outcome.report.ranked_patterns;
  for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
    patterns.push_back(ranked[i].first);
  }
  return patterns;
}

TEST_F(Chaos, AnalysisUnderFaultsRanksTheSameTopBottlenecks) {
  const core::AnalysisOutcome baseline =
      core::run_analysis(reduce1_config());
  ASSERT_GE(baseline.report.findings.size(), 2u);
  EXPECT_TRUE(baseline.warnings.empty());
  EXPECT_FALSE(baseline.sweep_report.degraded());

  // The headline robustness property: 5% of runs crash and 5% of counter
  // readings drop out, yet the analysis completes (no throw) and the two
  // most important bottleneck counters — and the dominant performance
  // pattern — match the fault-free run.
  const fault::ScopedFaults faults(
      "profiler.run_crash:0.05,profiler.counter_dropout:0.05", 1);
  const core::AnalysisOutcome faulty =
      core::run_analysis(reduce1_config());

  ASSERT_GE(faulty.report.findings.size(), 2u);
  EXPECT_EQ(top_counters(faulty, 2), top_counters(baseline, 2));
  EXPECT_EQ(top_patterns(faulty, 1), top_patterns(baseline, 1));
  // The faults really fired; this was not a vacuous comparison.
  EXPECT_GT(fault::stats(fault::points::kProfilerRunCrash).fired +
                fault::stats(fault::points::kProfilerCounterDropout).fired,
            0u);
}

// ---- ML-layer faults ----

TEST_F(Chaos, ForestNanFeatureFaultIsRepairedWithTrainingMedian) {
  // A corrupted feature must take the same repair path a real dropped
  // counter takes: replaced by the training median, never an arbitrary
  // tree descent on NaN comparisons.
  linalg::Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>((i * 7) % 13);
    y[i] = 5.0 * x(i, 0) + 0.5 * x(i, 1);
  }
  ml::RandomForest rf;
  ml::ForestParams params;
  params.n_trees = 60;
  params.seed = 7;
  rf.fit(x, y, {"a", "b"}, params);

  const std::vector<double> query = {50.0, 4.0};
  const double clean = rf.predict_row(query.data());

  std::vector<double> median_query = query;
  median_query[0] = rf.feature_medians()[0];
  const double repaired_reference = rf.predict_row(median_query.data());

  fault::configure("ml.forest.nan_feature:1.0");
  const double faulted = rf.predict_row(query.data());
  fault::reset();

  EXPECT_EQ(faulted, repaired_reference);
  EXPECT_NE(faulted, clean);  // the fault really corrupted the feature
}

TEST_F(Chaos, GuardedPredictionSurvivesModelDivergence) {
  // The robustness headline for the guard layer: with counter models
  // randomly diverging (output blown up 1e6x at the exit point), the
  // guarded reduce1 prediction demotes along the fallback chain and
  // still grades at least B in hull, while a query far beyond the
  // training sizes is flagged as extrapolated.
  const gpusim::Device device(gpusim::arch_by_name("gtx580"));
  const ml::Dataset sweep_ds = profiling::sweep(
      profiling::workload_by_name("reduce1"), device,
      profiling::log2_sizes(1 << 14, 1 << 22, 16, 256));
  core::ProblemScalingOptions pso;
  pso.model.forest.n_trees = 120;
  pso.arch = gpusim::arch_by_name("gtx580");
  const auto predictor = core::ProblemScalingPredictor::build(sweep_ds, pso);

  // Arm the divergence only for the predict phase: the fit above is
  // clean, the queries below run against a 20% per-call blow-up rate.
  const fault::ScopedFaults faults("ml.counter_model.diverge:0.2", 11);

  for (const double s : {65536.0, 262144.0, 1048576.0}) {
    const auto rec = predictor.predict_guarded(s);
    EXPECT_NE(rec.grade, guard::Grade::kC) << "size " << s;
    EXPECT_FALSE(rec.extrapolated) << "size " << s;
    EXPECT_TRUE(std::isfinite(rec.value)) << "size " << s;
    EXPECT_GT(rec.value, 0.0) << "size " << s;
  }

  const auto far = predictor.predict_guarded(4.0 * (1 << 22));
  EXPECT_TRUE(far.extrapolated);

  // The divergence really fired; the demotion chain was exercised.
  EXPECT_GT(fault::stats(fault::points::kCounterModelDiverge).fired, 0u);
}

// ---- the serving layer under storage faults ----

class ChaosServe : public Chaos {
 protected:
  // A tiny but real predictor: the smallest reduce1 model that still
  // exercises every serialized section. Built once per process — the
  // reload tests re-export it with varying provenance to change the
  // bundle checksum without retraining.
  static const core::ProblemScalingPredictor& predictor() {
    static const core::ProblemScalingPredictor p = [] {
      const gpusim::Device dev(gpusim::arch_by_name("gtx580"));
      const ml::Dataset sweep_ds = profiling::sweep(
          profiling::workload_by_name("reduce1"), dev,
          profiling::log2_sizes(1 << 14, 1 << 20, 8, 256));
      core::ProblemScalingOptions pso;
      pso.model.forest.n_trees = 30;
      pso.arch = gpusim::arch_by_name("gtx580");
      return core::ProblemScalingPredictor::build(sweep_ds, pso);
    }();
    return p;
  }

  void export_reduce1(std::size_t trained_rows = 8) const {
    serve::export_model((dir_ / "reduce1.bfmodel").string(), "reduce1",
                        "reduce1", "gtx580", trained_rows, predictor());
  }

  void SetUp() override {
    Chaos::SetUp();
    dir_ = fs::temp_directory_path() /
           ("bf_chaos_serve_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    export_reduce1();
  }
  void TearDown() override {
    fs::remove_all(dir_);
    Chaos::TearDown();
  }
  fs::path dir_;
};

TEST_F(ChaosServe, BitrotQuarantinesBundleAndServerDegrades) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);

  // Every load sees one flipped payload byte: the checksum must catch
  // it, the bundle is quarantined, and the server answers with an error
  // reply instead of dying or caching garbage.
  std::string error_reply;
  {
    const fault::ScopedFaults faults("serve.artifact.bitrot:1.0");
    error_reply =
        server.handle_line(R"({"model":"reduce1","size":65536,"id":7})");
    EXPECT_GT(fault::stats(fault::points::kServeArtifactBitrot).fired, 0u);
  }
  const auto parsed = serve::parse_json(error_reply);
  EXPECT_FALSE(parsed.find("ok")->boolean);
  EXPECT_NE(parsed.find("error")->str.find("checksum"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir_ / "reduce1.bfmodel"));
  EXPECT_TRUE(fs::exists(dir_ / "reduce1.bfmodel.quarantined"));

  // The cache stayed consistent: nothing resident, the failure counted,
  // and later requests still answer (with a clean miss error, since the
  // bundle is gone from disk).
  EXPECT_TRUE(server.registry().resident().empty());
  EXPECT_EQ(server.registry().stats().failures, 1u);
  const auto again = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_FALSE(again.find("ok")->boolean);
}

TEST_F(ChaosServe, TransientLoadFailureRecoversOnRetry) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  // Zero backoff: the immediate retry must reach the disk instead of
  // fast-failing inside the supervision window.
  options.reload.backoff_initial_ms = 0;
  serve::Server server(options);

  {
    // One injected I/O failure, then the fault budget is spent.
    const fault::ScopedFaults faults("serve.cache.load_fail:1.0:1");
    const auto reply = serve::parse_json(
        server.handle_line(R"({"model":"reduce1","size":65536})"));
    EXPECT_FALSE(reply.find("ok")->boolean);
  }
  // Graceful degradation is transient: the failed entry was dropped, so
  // the same request now loads the (intact) bundle and succeeds.
  const auto reply = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_TRUE(reply.find("ok")->boolean);
  EXPECT_GT(reply.find("predicted_ms")->number, 0.0);
  EXPECT_EQ(server.registry().stats().failures, 1u);
  EXPECT_EQ(server.registry().stats().loads, 2u);
}

TEST_F(ChaosServe, InjectedReloadCorruptionRollsBackAndQuarantines) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.reload.backoff_initial_ms = 0;
  serve::Server server(options);
  const auto first = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  ASSERT_TRUE(first.find("ok")->boolean);
  const double baseline = first.find("predicted_ms")->number;

  // A new bundle lands on disk, but its staged read is corrupted by the
  // injected fault: the reload must roll back, quarantine the file, and
  // keep generation 1 serving bit-identical predictions.
  export_reduce1(9);
  {
    const fault::ScopedFaults faults("serve.reload.corrupt:1.0:1");
    const auto reply = serve::parse_json(
        server.handle_line(R"({"cmd":"reload","model":"reduce1"})"));
    EXPECT_TRUE(reply.find("ok")->boolean);
    EXPECT_EQ(reply.find("status")->str, "rolled_back");
    EXPECT_EQ(reply.find("generation")->number, 1.0);
    EXPECT_GT(fault::stats(fault::points::kServeReloadCorrupt).fired, 0u);
  }
  EXPECT_FALSE(fs::exists(dir_ / "reduce1.bfmodel"));
  EXPECT_TRUE(fs::exists(dir_ / "reduce1.bfmodel.quarantined"));

  const auto again = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_TRUE(again.find("ok")->boolean);
  EXPECT_EQ(again.find("generation")->number, 1.0);
  EXPECT_EQ(again.find("predicted_ms")->number, baseline);

  const auto stats = serve::parse_json(
      server.handle_line(R"({"cmd":"stats"})"));
  EXPECT_EQ(stats.find("rollbacks")->number, 1.0);
  ASSERT_EQ(stats.find("models")->array.size(), 1u);
  EXPECT_EQ(stats.find("models")->array[0].find("rollbacks")->number, 1.0);
}

TEST_F(ChaosServe, InjectedCanaryFailureKeepsOldGenerationThenRecovers) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.reload.backoff_initial_ms = 0;
  serve::Server server(options);
  ASSERT_TRUE(serve::parse_json(
                  server.handle_line(R"({"model":"reduce1","size":65536})"))
                  .find("ok")
                  ->boolean);

  // The staged bundle parses fine but flunks golden-probe validation.
  export_reduce1(9);
  {
    const fault::ScopedFaults faults("serve.reload.canary_fail:1.0:1");
    const auto reply = serve::parse_json(
        server.handle_line(R"({"cmd":"reload","model":"reduce1"})"));
    EXPECT_EQ(reply.find("status")->str, "rolled_back");
    EXPECT_NE(reply.find("error")->str.find("canary"), std::string::npos);
    EXPECT_GT(fault::stats(fault::points::kServeReloadCanaryFail).fired, 0u);
  }
  EXPECT_TRUE(fs::exists(dir_ / "reduce1.bfmodel.quarantined"));
  const auto pinned = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_EQ(pinned.find("generation")->number, 1.0);

  // The rollback is transient: a healthy re-export promotes cleanly.
  export_reduce1(10);
  const auto reply = serve::parse_json(
      server.handle_line(R"({"cmd":"reload","model":"reduce1"})"));
  EXPECT_EQ(reply.find("status")->str, "promoted");
  EXPECT_EQ(reply.find("generation")->number, 2.0);
}

TEST_F(ChaosServe, NetDisconnectFaultDropsOneConnectionOnly) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);
  serve::NetServerOptions net_options;
  net_options.unix_path = (dir_ / "chaos.sock").string();
  net_options.workers = 1;
  serve::testutil::RunningNetServer running(server, net_options);

  // The armed point forces the victim's parsed request to drop its
  // connection — the "peer vanished mid-stream" path, deterministically.
  {
    const fault::ScopedFaults faults("serve.net.disconnect:1.0:1");
    serve::testutil::TestClient victim =
        serve::testutil::TestClient::connect_unix(net_options.unix_path);
    ASSERT_TRUE(victim.send_line(
        R"({"model":"reduce1","size":65536,"id":"victim"})"));
    EXPECT_TRUE(victim.eof_within());
    EXPECT_GT(fault::stats(fault::points::kServeNetDisconnect).fired, 0u);
  }

  // The server survived and other connections see correct replies.
  serve::testutil::TestClient client =
      serve::testutil::TestClient::connect_unix(net_options.unix_path);
  ASSERT_TRUE(client.send_line(
      R"({"model":"reduce1","size":65536,"id":"ok"})"));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
  EXPECT_EQ(parsed.find("id")->str, "ok");
  EXPECT_EQ(running.counters().disconnects.load(), 1u);
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ChaosServe, NetStallFaultDelaysButEveryReplyArrives) {
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);
  serve::NetServerOptions net_options;
  net_options.unix_path = (dir_ / "chaos.sock").string();
  net_options.workers = 1;
  serve::testutil::RunningNetServer running(server, net_options);

  const fault::ScopedFaults faults("serve.net.stall:1.0:3");
  serve::testutil::TestClient client =
      serve::testutil::TestClient::connect_unix(net_options.unix_path);
  for (const std::string id : {"s1", "s2"}) {
    ASSERT_TRUE(client.send_line(
        "{\"model\":\"reduce1\",\"size\":65536,\"id\":\"" + id + "\"}"));
    std::string reply;
    ASSERT_TRUE(client.read_line(reply)) << "stall swallowed reply " << id;
    const auto parsed = serve::parse_json(reply);
    EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
    EXPECT_EQ(parsed.find("id")->str, id);
  }
  EXPECT_GT(fault::stats(fault::points::kServeNetStall).fired, 0u);
  EXPECT_EQ(running.stop(), 0);
}

// ---- size-grid hygiene (rides along with the failure policy) ----

TEST(SizeGrids, Log2SizesDeduplicatesAfterRounding) {
  // Coarse rounding collapses neighbouring log-spaced points; the result
  // must be strictly increasing with no repeated sizes.
  const auto sizes = profiling::log2_sizes(1000, 4000, 10, 1024);
  ASSERT_FALSE(sizes.empty());
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
  EXPECT_LT(sizes.size(), 10u);  // duplicates were really removed
}

}  // namespace
}  // namespace bf
