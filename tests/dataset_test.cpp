// Tests for bf::ml::Dataset and train/test splitting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "ml/dataset.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

Dataset make_small() {
  Dataset ds;
  ds.add_column("x", {1, 2, 3, 4});
  ds.add_column("y", {10, 20, 30, 40});
  return ds;
}

TEST(Dataset, AddColumnAndAccess) {
  const Dataset ds = make_small();
  EXPECT_EQ(ds.num_rows(), 4u);
  EXPECT_EQ(ds.num_cols(), 2u);
  EXPECT_DOUBLE_EQ(ds.at(2, "y"), 30.0);
  EXPECT_EQ(ds.column_index("y"), 1u);
  EXPECT_THROW(ds.column("z"), Error);
}

TEST(Dataset, RejectsDuplicatesAndRaggedColumns) {
  Dataset ds = make_small();
  EXPECT_THROW(ds.add_column("x", {0, 0, 0, 0}), Error);
  EXPECT_THROW(ds.add_column("z", {1, 2}), Error);
}

TEST(Dataset, AddRow) {
  Dataset ds = make_small();
  ds.add_row({5, 50});
  EXPECT_EQ(ds.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(ds.at(4, "y"), 50.0);
  EXPECT_THROW(ds.add_row({1}), Error);
}

TEST(Dataset, SelectRowsWithRepeats) {
  const Dataset ds = make_small();
  const Dataset sel = ds.select_rows({3, 0, 0});
  EXPECT_EQ(sel.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(sel.at(0, "x"), 4.0);
  EXPECT_DOUBLE_EQ(sel.at(1, "x"), 1.0);
  EXPECT_DOUBLE_EQ(sel.at(2, "x"), 1.0);
  EXPECT_THROW(ds.select_rows({4}), Error);
}

TEST(Dataset, SelectAndDropColumns) {
  const Dataset ds = make_small();
  const Dataset sel = ds.select_columns({"y"});
  EXPECT_EQ(sel.num_cols(), 1u);
  EXPECT_EQ(sel.column_names()[0], "y");
  const Dataset dropped = ds.drop_columns({"y", "nonexistent"});
  EXPECT_EQ(dropped.num_cols(), 1u);
  EXPECT_TRUE(dropped.has_column("x"));
}

TEST(Dataset, DropConstantColumns) {
  Dataset ds;
  ds.add_column("varying", {1, 2, 3});
  ds.add_column("constant", {7, 7, 7});
  ds.add_column("nearly", {1.0, 1.0 + 1e-15, 1.0});
  const auto dropped = ds.drop_constant_columns();
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(ds.num_cols(), 1u);
  EXPECT_TRUE(ds.has_column("varying"));
}

TEST(Dataset, ToMatrixColumnOrder) {
  const Dataset ds = make_small();
  const auto m = ds.to_matrix({"y", "x"});
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
}

TEST(Dataset, ConcatRequiresSameSchema) {
  const Dataset a = make_small();
  Dataset b;
  b.add_column("x", {9});
  b.add_column("y", {90});
  const Dataset c = Dataset::concat(a, b);
  EXPECT_EQ(c.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(c.at(4, "y"), 90.0);

  Dataset wrong;
  wrong.add_column("x", {1});
  EXPECT_THROW(Dataset::concat(a, wrong), Error);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset ds = make_small();
  const Dataset back = Dataset::from_csv(ds.to_csv());
  EXPECT_EQ(back.column_names(), ds.column_names());
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(back.at(r, "x"), ds.at(r, "x"));
    EXPECT_DOUBLE_EQ(back.at(r, "y"), ds.at(r, "y"));
  }
}

TEST(TrainTestSplit, PartitionIsDisjointAndComplete) {
  Dataset ds;
  std::vector<double> ids(50);
  for (std::size_t i = 0; i < 50; ++i) ids[i] = static_cast<double>(i);
  ds.add_column("id", ids);
  Rng rng(42);
  const auto split = train_test_split(ds, 0.2, rng);
  EXPECT_EQ(split.train.num_rows() + split.test.num_rows(), 50u);
  EXPECT_EQ(split.test.num_rows(), 10u);

  std::set<double> seen;
  for (std::size_t r = 0; r < split.train.num_rows(); ++r) {
    seen.insert(split.train.at(r, "id"));
  }
  for (std::size_t r = 0; r < split.test.num_rows(); ++r) {
    const bool inserted = seen.insert(split.test.at(r, "id")).second;
    EXPECT_TRUE(inserted) << "row leaked into both sides";
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(TrainTestSplit, AtLeastOneTestRowWhenRequested) {
  Dataset ds;
  ds.add_column("x", {1, 2, 3});
  Rng rng(1);
  const auto split = train_test_split(ds, 0.01, rng);
  EXPECT_EQ(split.test.num_rows(), 1u);
  EXPECT_EQ(split.train.num_rows(), 2u);
}

TEST(TrainTestSplit, ZeroFractionGivesEmptyTest) {
  Dataset ds;
  ds.add_column("x", {1, 2, 3});
  Rng rng(1);
  const auto split = train_test_split(ds, 0.0, rng);
  EXPECT_EQ(split.test.num_rows(), 0u);
  EXPECT_EQ(split.train.num_rows(), 3u);
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  Dataset ds;
  std::vector<double> ids(20);
  for (std::size_t i = 0; i < 20; ++i) ids[i] = static_cast<double>(i);
  ds.add_column("id", ids);
  Rng a(5);
  Rng b(5);
  const auto sa = train_test_split(ds, 0.25, a);
  const auto sb = train_test_split(ds, 0.25, b);
  EXPECT_EQ(sa.test_indices, sb.test_indices);
}

// ---- metrics ----

TEST(Metrics, MseRmseMae) {
  const std::vector<double> t{1, 2, 3};
  const std::vector<double> p{1, 2, 6};
  EXPECT_DOUBLE_EQ(mse(t, p), 3.0);
  EXPECT_DOUBLE_EQ(rmse(t, p), std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(mae(t, p), 1.0);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<double> t{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2(t, t), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r2(t, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, ExplainedVariance) {
  const std::vector<double> t{0, 2, 4, 6};
  EXPECT_DOUBLE_EQ(explained_variance(t, t), 1.0);
}

TEST(Metrics, MedianAbsPctError) {
  const std::vector<double> t{100, 200, 400};
  const std::vector<double> p{110, 180, 400};
  // errors: 10%, 10%, 0% -> median 10%.
  EXPECT_NEAR(median_abs_pct_error(t, p), 10.0, 1e-12);
}

TEST(Metrics, PearsonKnown) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  const std::vector<double> constant(4, 5.0);
  EXPECT_DOUBLE_EQ(pearson(a, constant), 0.0);
}

TEST(Metrics, BasicStats) {
  const std::vector<double> v{2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
  EXPECT_NEAR(variance(v), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(sample_sd(v), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(sample_sd({1.0}), 0.0);
}

}  // namespace
}  // namespace bf::ml
