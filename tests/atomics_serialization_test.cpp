// Tests for shared-memory atomics (the histogram contention signature)
// and random-forest serialisation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/sharedmem.hpp"
#include "kernels/kernel_base.hpp"
#include "kernels/misc.hpp"
#include "ml/forest.hpp"
#include "profiling/workloads.hpp"

namespace bf {
namespace {

using gpusim::Event;
using kernels::lane_addrs;

// ---- atomic conflict model ----

gpusim::WarpInstr atomic_to(const std::vector<std::uint32_t>& lane_addr) {
  gpusim::WarpInstr in;
  in.op = gpusim::Op::kAtomicShared;
  in.mask = gpusim::mask_first_lanes(static_cast<int>(lane_addr.size()));
  for (std::size_t i = 0; i < lane_addr.size(); ++i) {
    in.addr[i] = lane_addr[i];
  }
  return in;
}

TEST(SharedAtomics, SameAddressFullySerialises) {
  // All 32 lanes atomicAdd the same word: 32 passes (a broadcast load
  // would be 1).
  std::vector<std::uint32_t> addrs(32, 64);
  EXPECT_EQ(gpusim::shared_atomic_passes(atomic_to(addrs), gpusim::gtx580()),
            32);
}

TEST(SharedAtomics, DistinctBanksConflictFree) {
  std::vector<std::uint32_t> addrs;
  for (int lane = 0; lane < 32; ++lane) {
    addrs.push_back(4u * static_cast<std::uint32_t>(lane));
  }
  EXPECT_EQ(gpusim::shared_atomic_passes(atomic_to(addrs), gpusim::gtx580()),
            1);
}

TEST(SharedAtomics, HalfCollisions) {
  // Lanes pair up on 16 distinct words in distinct banks: 2 passes.
  std::vector<std::uint32_t> addrs;
  for (int lane = 0; lane < 32; ++lane) {
    addrs.push_back(4u * static_cast<std::uint32_t>(lane / 2));
  }
  EXPECT_EQ(gpusim::shared_atomic_passes(atomic_to(addrs), gpusim::gtx580()),
            2);
}

TEST(SharedAtomics, PlainOpRejected) {
  auto in = atomic_to(std::vector<std::uint32_t>(32, 0));
  in.op = gpusim::Op::kLdShared;
  EXPECT_THROW(gpusim::shared_atomic_passes(in, gpusim::gtx580()), Error);
}

// ---- histogram kernel ----

TEST(Histogram, SkewDrivesContentionAndTime) {
  const gpusim::Device device(gpusim::gtx580());
  const auto uniform =
      device.run(kernels::HistogramKernel(1 << 20, 256, 0.0));
  const auto skewed =
      device.run(kernels::HistogramKernel(1 << 20, 256, 0.95));
  EXPECT_GT(skewed.counters.get(Event::kSharedBankConflict),
            3.0 * uniform.counters.get(Event::kSharedBankConflict));
  EXPECT_GT(skewed.time_ms, 1.5 * uniform.time_ms);
  // Same memory traffic either way: the contention is the only change.
  EXPECT_NEAR(skewed.counters.get(Event::kGldRequest),
              uniform.counters.get(Event::kGldRequest),
              0.01 * uniform.counters.get(Event::kGldRequest));
}

TEST(Histogram, BinDistributionMatchesSkew) {
  const kernels::HistogramKernel uniform(1 << 16, 256, 0.0);
  const kernels::HistogramKernel skewed(1 << 16, 256, 0.9);
  int uniform_zero = 0;
  int skewed_zero = 0;
  for (std::int64_t e = 0; e < (1 << 14); ++e) {
    uniform_zero += uniform.bin_of(e) == 0;
    skewed_zero += skewed.bin_of(e) == 0;
  }
  EXPECT_LT(uniform_zero, (1 << 14) / 64);       // ~1/256 expected
  EXPECT_GT(skewed_zero, (1 << 14) * 85 / 100);  // ~90% expected
}

TEST(Histogram, WorkloadRegistered) {
  EXPECT_NO_THROW(profiling::workload_by_name("histogram_s00"));
  EXPECT_NO_THROW(profiling::workload_by_name("histogram_s90"));
}

TEST(Histogram, InputValidation) {
  EXPECT_THROW(kernels::HistogramKernel(0, 256, 0.0), Error);
  EXPECT_THROW(kernels::HistogramKernel(1024, 1, 0.0), Error);
  EXPECT_THROW(kernels::HistogramKernel(1024, 256, 1.5), Error);
}

// ---- forest serialisation ----

ml::RandomForest make_forest(std::size_t n_trees = 60) {
  Rng rng(99);
  linalg::Matrix x(80, 2);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = 4.0 * x(i, 0) - x(i, 1) + rng.normal(0, 0.3);
  }
  ml::RandomForest rf;
  ml::ForestParams p;
  p.n_trees = n_trees;
  p.seed = 17;
  rf.fit(x, y, {"alpha", "beta"}, p);
  return rf;
}

TEST(ForestSerialization, RoundTripPreservesEverything) {
  const auto rf = make_forest();
  std::stringstream ss;
  rf.save(ss);
  const auto back = ml::RandomForest::load(ss);

  EXPECT_EQ(back.n_trees(), rf.n_trees());
  EXPECT_EQ(back.feature_names(), rf.feature_names());
  EXPECT_DOUBLE_EQ(back.oob_mse(), rf.oob_mse());
  EXPECT_DOUBLE_EQ(back.pct_var_explained(), rf.pct_var_explained());

  // Predictions identical on a probe grid.
  for (double a = 0; a <= 10; a += 2.5) {
    for (double b = 0; b <= 10; b += 2.5) {
      const double row[2] = {a, b};
      EXPECT_DOUBLE_EQ(back.predict_row(row), rf.predict_row(row));
    }
  }
  // Importance identical.
  const auto ia = rf.importance();
  const auto ib = back.importance();
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].name, ib[i].name);
    EXPECT_DOUBLE_EQ(ia[i].pct_inc_mse, ib[i].pct_inc_mse);
  }
  // Partial dependence (needs the retained training data) identical.
  const auto pa = rf.partial_dependence("alpha", 8);
  const auto pb = back.partial_dependence("alpha", 8);
  for (std::size_t g = 0; g < pa.size(); ++g) {
    EXPECT_DOUBLE_EQ(pa[g].y, pb[g].y);
  }
}

TEST(ForestSerialization, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bf_forest_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "model.bf").string();
  const auto rf = make_forest(20);
  rf.save_file(path);
  const auto back = ml::RandomForest::load_file(path);
  const double row[2] = {3.0, 7.0};
  EXPECT_DOUBLE_EQ(back.predict_row(row), rf.predict_row(row));
  std::filesystem::remove_all(dir);
}

TEST(ForestSerialization, MalformedInputRejected) {
  std::stringstream empty;
  EXPECT_THROW(ml::RandomForest::load(empty), Error);
  std::stringstream wrong("bf_forest 2\n");
  EXPECT_THROW(ml::RandomForest::load(wrong), Error);
  std::stringstream truncated("bf_forest 1\nfeatures 2 a b\n");
  EXPECT_THROW(ml::RandomForest::load(truncated), Error);
}

TEST(ForestSerialization, UnfittedSaveRejected) {
  ml::RandomForest rf;
  std::stringstream ss;
  EXPECT_THROW(rf.save(ss), Error);
}

// ---- engine barrier semantics under mismatched sync counts ----

TEST(EngineBarrier, ExitedWarpsReleaseBarriers) {
  // Warps emit different numbers of __syncthreads(). Like real hardware
  // (where exited threads no longer participate in barriers), the engine
  // counts only live warps, so this shape completes instead of hanging.
  class MismatchedKernel final : public gpusim::TraceKernel {
   public:
    std::string name() const override { return "barrier_mismatch"; }
    gpusim::LaunchGeometry geometry() const override {
      gpusim::LaunchGeometry g;
      g.grid_x = 1;
      g.block_x = 64;
      g.registers_per_thread = 16;
      return g;
    }
    void emit_warp(int /*block*/, int warp,
                   gpusim::TraceSink& sink) const override {
      sink.alu(gpusim::kFullMask, 1);
      sink.sync();
      if (warp == 1) {
        sink.sync();  // warp 0 has already exited by now
        sink.alu(gpusim::kFullMask, 1);
      }
    }
  };
  const gpusim::Device device(gpusim::gtx580());
  gpusim::RunResult r;
  ASSERT_NO_THROW(r = device.run(MismatchedKernel{}));
  // alu+sync per warp, plus warp 1's extra sync+alu.
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kInstExecuted), 6.0);
}

}  // namespace
}  // namespace bf
