// Tests for the SM timing engine and Device front end, exercised through
// small hand-built kernels with exactly known counter values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gpusim/engine.hpp"
#include "kernels/kernel_base.hpp"

namespace bf::gpusim {
namespace {

using kernels::lane_addrs;

/// A trivially scriptable kernel: every warp of every block runs the same
/// caller-provided trace.
class ScriptKernel final : public TraceKernel {
 public:
  ScriptKernel(LaunchGeometry geom, WarpTrace trace)
      : geom_(geom), trace_(std::move(trace)) {}

  std::string name() const override { return "script"; }
  LaunchGeometry geometry() const override { return geom_; }
  void emit_warp(int /*block*/, int /*warp*/,
                 TraceSink& sink) const override {
    for (const auto& in : trace_) {
      switch (in.op) {
        case Op::kIAlu:
        case Op::kFAlu:
        case Op::kSfu:
          sink.alu(in.mask, 1, in.op);
          break;
        case Op::kBranch:
          sink.branch(in.mask, in.divergent);
          break;
        case Op::kSync:
          sink.sync();
          break;
        case Op::kLdGlobal:
          sink.global_load(in.mask, in.addr, in.access_bytes);
          break;
        case Op::kStGlobal:
          sink.global_store(in.mask, in.addr, in.access_bytes);
          break;
        case Op::kLdShared:
          sink.shared_load(in.mask, in.addr, in.access_bytes);
          break;
        case Op::kStShared:
          sink.shared_store(in.mask, in.addr, in.access_bytes);
          break;
        case Op::kAtomicShared:
          sink.shared_atomic(in.mask, in.addr, in.access_bytes);
          break;
      }
    }
  }

 private:
  LaunchGeometry geom_;
  WarpTrace trace_;
};

LaunchGeometry one_warp_blocks(int blocks) {
  LaunchGeometry g;
  g.grid_x = blocks;
  g.block_x = 32;
  g.registers_per_thread = 16;
  return g;
}

WarpInstr alu_instr() {
  WarpInstr in;
  in.op = Op::kFAlu;
  return in;
}

WarpInstr load_instr(std::uint32_t base) {
  WarpInstr in;
  in.op = Op::kLdGlobal;
  in.addr = lane_addrs([base](int lane) { return base + 4u * lane; });
  return in;
}

TEST(Engine, ExactCountersForTinyKernel) {
  // 3 blocks x 1 warp, each: 2 FAlu + 1 coalesced load + 1 store.
  WarpTrace trace;
  trace.push_back(alu_instr());
  trace.push_back(alu_instr());
  trace.push_back(load_instr(0));
  WarpInstr store = load_instr(4096);
  store.op = Op::kStGlobal;
  trace.push_back(store);

  const Device device(gtx580());
  const ScriptKernel kernel(one_warp_blocks(3), trace);
  const RunResult r = device.run(kernel);

  EXPECT_EQ(r.blocks_total, 3);
  EXPECT_EQ(r.blocks_simulated, 3);
  EXPECT_DOUBLE_EQ(r.sample_scale, 1.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kInstExecuted), 12.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kGldRequest), 3.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kGstRequest), 3.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kThreadInstExecuted), 12.0 * 32);
  // One 128-byte load per block, all to the same line but on different
  // SMs -> L1 cold miss each.
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kGlobalLoadTransaction), 3.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kFlopCount), 6.0 * 32);
  EXPECT_GT(r.time_ms, 0.0);
}

TEST(Engine, SameBlockLoadsHitL1) {
  // One block loading the same line twice: second access hits.
  WarpTrace trace;
  trace.push_back(load_instr(0));
  trace.push_back(load_instr(0));
  const Device device(gtx580());
  const ScriptKernel kernel(one_warp_blocks(1), trace);
  const RunResult r = device.run(kernel);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kL1GlobalLoadMiss), 1.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kL1GlobalLoadHit), 1.0);
}

TEST(Engine, KeplerBypassesL1ForGlobalLoads) {
  WarpTrace trace;
  trace.push_back(load_instr(0));
  trace.push_back(load_instr(0));
  const Device device(kepler_k20m());
  const ScriptKernel kernel(one_warp_blocks(1), trace);
  const RunResult r = device.run(kernel);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kL1GlobalLoadMiss), 0.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kL1GlobalLoadHit), 0.0);
  // 32 lanes * 4 B = 128 B = 4 x 32 B L2 segments, twice.
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kL2ReadTransactions), 8.0);
}

TEST(Engine, BankConflictReplaysCountedAndCostly) {
  // Shared load at word stride 32: a 32-way conflict -> 31 replays.
  WarpInstr conflict;
  conflict.op = Op::kLdShared;
  conflict.addr = lane_addrs([](int lane) { return 128u * lane; });
  WarpInstr clean;
  clean.op = Op::kLdShared;
  clean.addr = lane_addrs([](int lane) { return 4u * lane; });

  const Device device(gtx580());
  const RunResult bad =
      device.run(ScriptKernel(one_warp_blocks(1), {conflict}));
  const RunResult good =
      device.run(ScriptKernel(one_warp_blocks(1), {clean}));
  EXPECT_DOUBLE_EQ(bad.counters.get(Event::kSharedBankConflict), 31.0);
  EXPECT_DOUBLE_EQ(good.counters.get(Event::kSharedBankConflict), 0.0);
  EXPECT_DOUBLE_EQ(bad.counters.get(Event::kInstIssued), 32.0);
  EXPECT_DOUBLE_EQ(bad.counters.get(Event::kInstExecuted), 1.0);
  EXPECT_GT(bad.counters.get(Event::kElapsedCycles),
            good.counters.get(Event::kElapsedCycles));
}

TEST(Engine, UncoalescedLoadsCostMoreTime) {
  WarpInstr scattered;
  scattered.op = Op::kLdGlobal;
  scattered.addr = lane_addrs([](int lane) { return 4096u * lane; });
  WarpTrace bad_trace(8, scattered);
  WarpTrace good_trace(8, load_instr(0));

  const Device device(gtx580());
  const RunResult bad =
      device.run(ScriptKernel(one_warp_blocks(4), bad_trace));
  const RunResult good =
      device.run(ScriptKernel(one_warp_blocks(4), good_trace));
  EXPECT_GT(bad.counters.get(Event::kGlobalLoadTransaction),
            8.0 * good.counters.get(Event::kGlobalLoadTransaction));
  EXPECT_GT(bad.time_ms, good.time_ms);
}

TEST(Engine, BarrierSynchronisesWarps) {
  // Two warps per block; both must pass the sync. If barrier handling
  // were broken this would deadlock (and BF_CHECK would fire).
  LaunchGeometry g;
  g.grid_x = 2;
  g.block_x = 64;
  g.registers_per_thread = 16;
  WarpTrace trace;
  trace.push_back(alu_instr());
  WarpInstr sync;
  sync.op = Op::kSync;
  trace.push_back(sync);
  trace.push_back(alu_instr());
  const Device device(gtx580());
  const RunResult r = device.run(ScriptKernel(g, trace));
  // 2 blocks x 2 warps x 3 instructions.
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kInstExecuted), 12.0);
}

TEST(Engine, DivergentBranchCounted) {
  WarpInstr br;
  br.op = Op::kBranch;
  br.divergent = true;
  WarpInstr uniform;
  uniform.op = Op::kBranch;
  uniform.divergent = false;
  const Device device(gtx580());
  const RunResult r =
      device.run(ScriptKernel(one_warp_blocks(1), {br, uniform, br}));
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kBranch), 3.0);
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kDivergentBranch), 2.0);
}

TEST(Engine, SamplingScalesCounters) {
  // A large grid gets sampled; extensive counters must be scaled back to
  // the full grid within a small tolerance.
  WarpTrace trace;
  for (int i = 0; i < 4; ++i) trace.push_back(alu_instr());
  const Device device(gtx580());

  RunOptions full;
  full.max_sampled_blocks = 0;
  RunOptions sampled;
  sampled.max_sampled_blocks = 128;

  const ScriptKernel kernel(one_warp_blocks(4096), trace);
  const RunResult rf = device.run(kernel, full);
  const RunResult rs = device.run(kernel, sampled);
  EXPECT_EQ(rf.blocks_simulated, 4096);
  EXPECT_LT(rs.blocks_simulated, 4096);
  EXPECT_GT(rs.sample_scale, 1.0);
  EXPECT_NEAR(rs.counters.get(Event::kInstExecuted),
              rf.counters.get(Event::kInstExecuted),
              0.02 * rf.counters.get(Event::kInstExecuted));
  EXPECT_NEAR(rs.time_ms, rf.time_ms, 0.25 * rf.time_ms);
}

TEST(Engine, OccupancyCounterMatchesResidency) {
  // A single resident warp per SM: achieved occupancy must be ~1/48.
  WarpTrace trace;
  for (int i = 0; i < 50; ++i) trace.push_back(alu_instr());
  const Device device(gtx580());
  const RunResult r = device.run(ScriptKernel(one_warp_blocks(1), trace));
  const double occ = r.counters.get(Event::kActiveWarpCycles) /
                     (r.counters.get(Event::kActiveCycles) *
                      gtx580().max_warps_per_sm);
  EXPECT_NEAR(occ, 1.0 / 48.0, 1e-3);
}

TEST(Engine, MoreWarpsRaiseIpcUntilSaturation) {
  // Latency-bound with 1 warp; throughput-bound with many warps.
  WarpTrace trace;
  for (int i = 0; i < 64; ++i) trace.push_back(alu_instr());
  const Device device(gtx580());

  LaunchGeometry small = one_warp_blocks(1);
  LaunchGeometry big;
  big.grid_x = 16;  // one block per SM
  big.block_x = 512;
  big.registers_per_thread = 16;

  const RunResult r1 = device.run(ScriptKernel(small, trace));
  const RunResult r2 = device.run(ScriptKernel(big, trace));
  const double ipc1 = r1.counters.get(Event::kInstExecuted) /
                      r1.counters.get(Event::kActiveCycles);
  const double ipc2 = r2.counters.get(Event::kInstExecuted) /
                      r2.counters.get(Event::kActiveCycles);
  EXPECT_GT(ipc2, 3.0 * ipc1);
  // Fermi peak: 2 schedulers / 2-cycle issue -> ipc <= 1.
  EXPECT_LE(ipc2, 1.0 + 1e-9);
}

TEST(Engine, BandwidthRooflineEngages) {
  // A pure streaming kernel over a huge range must end bandwidth-bound.
  LaunchGeometry g;
  g.grid_x = 4096;
  g.block_x = 256;
  g.registers_per_thread = 12;
  WarpTrace trace;
  // Each warp loads 4 distinct lines (spread by block via emit: same
  // trace per block hits the same addresses; use big strides to kill
  // locality between segments).
  for (int i = 0; i < 4; ++i) {
    WarpInstr in;
    in.op = Op::kLdGlobal;
    const std::uint32_t base = 1u << 20;
    in.addr = lane_addrs([=](int lane) {
      return base + 131072u * i + 4u * lane;
    });
    trace.push_back(in);
  }
  const Device device(gtx580());
  const RunResult r = device.run(ScriptKernel(g, trace));
  EXPECT_GT(r.counters.get(Event::kDramReadTransactions), 0.0);
}

TEST(Engine, AggregateResultAccumulates) {
  WarpTrace trace{alu_instr()};
  const Device device(gtx580());
  const ScriptKernel kernel(one_warp_blocks(2), trace);
  AggregateResult agg;
  agg.add(device.run(kernel));
  agg.add(device.run(kernel));
  EXPECT_EQ(agg.launches, 2);
  EXPECT_DOUBLE_EQ(agg.counters.get(Event::kInstExecuted), 4.0);
  EXPECT_GT(agg.time_ms, 0.0);
}

TEST(Engine, EmptyGridRejected) {
  LaunchGeometry g;
  g.grid_x = 0;
  g.block_x = 32;
  const Device device(gtx580());
  const ScriptKernel kernel(g, {alu_instr()});
  EXPECT_THROW(device.run(kernel), Error);
}

}  // namespace
}  // namespace bf::gpusim
