// End-to-end tests for bf::power — the power response riding the whole
// prediction stack: guarded envelope-clamped predictions on real sweeps,
// the energy bottleneck ranking, the optional v3 artifact record
// (round-trip bit-identity, v2 compatibility) and power fields in
// serving replies.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "core/predictor.hpp"
#include "gpusim/arch.hpp"
#include "ml/dataset.hpp"
#include "power/analysis.hpp"
#include "power/predictor.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"
#include "serve/artifact.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace bf {
namespace {

ml::Dataset sweep_for(const std::string& workload, const std::string& arch,
                      double lo, double hi) {
  const gpusim::Device dev(gpusim::arch_by_name(arch));
  return profiling::sweep(profiling::workload_by_name(workload), dev,
                          profiling::log2_sizes(lo, hi, 10, 16));
}

power::PowerPredictorOptions small_power_options(const std::string& arch) {
  power::PowerPredictorOptions opts;
  opts.scaling.model.forest.n_trees = 40;
  opts.scaling.arch = gpusim::arch_by_name(arch);
  return opts;
}

core::ProblemScalingPredictor small_time_predictor(const ml::Dataset& sweep,
                                                   const std::string& arch) {
  core::ProblemScalingOptions pso;
  pso.model.forest.n_trees = 40;
  pso.arch = gpusim::arch_by_name(arch);
  return core::ProblemScalingPredictor::build(sweep, pso);
}

bool known_grade(guard::Grade g) {
  return g == guard::Grade::kA || g == guard::Grade::kB ||
         g == guard::Grade::kC;
}

TEST(PowerPredict, GuardedPredictionsStayInEnvelope) {
  // Two workload families x two generations: every guarded power
  // prediction lands inside the board envelope and carries a grade;
  // energy is power x time with the worse of the two grades.
  struct Case {
    const char* workload;
    double lo, hi, query;
  };
  const std::vector<Case> cases = {{"reduce1", 16384, 1 << 20, 262144},
                                   {"matrixMul", 64, 512, 192}};
  for (const char* arch : {"gtx580", "k20m"}) {
    const gpusim::ArchSpec spec = gpusim::arch_by_name(arch);
    for (const auto& c : cases) {
      const ml::Dataset sweep = sweep_for(c.workload, arch, c.lo, c.hi);
      ASSERT_TRUE(sweep.has_column(profiling::kPowerColumn))
          << c.workload << " on " << arch;
      const auto predictor =
          power::PowerPredictor::build(sweep, small_power_options(arch));

      const auto p = predictor.predict_guarded(c.query);
      EXPECT_GE(p.power_w, spec.idle_w - 1e-9) << c.workload << "/" << arch;
      EXPECT_LE(p.power_w, spec.tdp_w + 1e-9) << c.workload << "/" << arch;
      EXPECT_TRUE(known_grade(p.record.grade));
      EXPECT_DOUBLE_EQ(p.energy_j, 0.0);  // no time supplied

      const auto time_model = small_time_predictor(sweep, arch);
      const auto t = time_model.predict_guarded(c.query);
      const auto pe = predictor.predict_guarded(c.query, t);
      EXPECT_DOUBLE_EQ(pe.power_w, p.power_w);
      EXPECT_DOUBLE_EQ(pe.energy_j, pe.power_w * t.value * 1e-3);
      EXPECT_EQ(pe.energy_grade,
                power::worse_grade(pe.record.grade, t.grade));
    }
  }
}

TEST(PowerPredict, EnergyBottleneckReportIsPopulated) {
  const ml::Dataset sweep = sweep_for("reduce1", "gtx580", 16384, 1 << 20);
  power::EnergyAnalysisOptions opts;
  opts.model.forest.n_trees = 40;
  const core::BottleneckReport report =
      power::analyze_energy_bottlenecks(sweep, "reduce1", "gtx580", opts);
  EXPECT_EQ(report.workload, "reduce1");
  EXPECT_FALSE(report.findings.empty());
  EXPECT_FALSE(report.ranked_patterns.empty());
  // The forest must actually explain power variance, not rank noise.
  EXPECT_GT(report.pct_var_explained, 20.0);
}

TEST(PowerPredict, WorseGradeIsCommutativeMax) {
  using guard::Grade;
  EXPECT_EQ(power::worse_grade(Grade::kA, Grade::kA), Grade::kA);
  EXPECT_EQ(power::worse_grade(Grade::kA, Grade::kB), Grade::kB);
  EXPECT_EQ(power::worse_grade(Grade::kC, Grade::kA), Grade::kC);
  EXPECT_EQ(power::worse_grade(Grade::kB, Grade::kC), Grade::kC);
}

class PowerArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bf_power_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string bundle_path(const std::string& name) const {
    return (dir_ / (name + serve::kBundleSuffix)).string();
  }

  std::filesystem::path dir_;
};

// Shared trained models (training dominates this binary's runtime).
const ml::Dataset& shared_sweep() {
  static const ml::Dataset ds = sweep_for("reduce1", "gtx580", 16384, 1 << 20);
  return ds;
}

const core::ProblemScalingPredictor& shared_time() {
  static const core::ProblemScalingPredictor p =
      small_time_predictor(shared_sweep(), "gtx580");
  return p;
}

const power::PowerPredictor& shared_power() {
  static const power::PowerPredictor p =
      power::PowerPredictor::build(shared_sweep(), small_power_options("gtx580"));
  return p;
}

TEST_F(PowerArtifactTest, V3RoundTripIsBitIdentical) {
  serve::export_model(bundle_path("pw"), "pw", "reduce1", "gtx580",
                      shared_sweep().num_rows(), shared_time(), 5,
                      &shared_power());
  const auto content = read_file(bundle_path("pw"));
  ASSERT_TRUE(content.has_value());

  const serve::ModelBundle loaded =
      serve::bundle_from_string(*content, "test");
  ASSERT_TRUE(loaded.power.has_value());
  // Re-serialising the parsed bundle reproduces the file byte for byte.
  EXPECT_EQ(serve::bundle_to_string(loaded), *content);

  // Both responses predict bit-identically through the round trip,
  // including extrapolated queries.
  for (const double size : {20000.0, 65536.0, 262144.0, 4194304.0}) {
    EXPECT_EQ(shared_time().predict_guarded(size).value,
              loaded.predictor.predict_guarded(size).value);
    const auto a = shared_power().predict_guarded(size);
    const auto b = loaded.power->predict_guarded(size);
    EXPECT_EQ(a.power_w, b.power_w);
    EXPECT_EQ(a.record.grade, b.record.grade);
    EXPECT_EQ(a.record.lo, b.record.lo);
    EXPECT_EQ(a.record.hi, b.record.hi);
  }
}

TEST_F(PowerArtifactTest, PowerlessBundleLoadsUnderV2Header) {
  // A bundle exported without the power record must remain readable by
  // (and byte-compatible with) the v2 vintage: swapping the outer
  // header version back to 2 parses cleanly and predicts identically.
  serve::export_model(bundle_path("plain"), "plain", "reduce1", "gtx580",
                      shared_sweep().num_rows(), shared_time());
  auto content = read_file(bundle_path("plain"));
  ASSERT_TRUE(content.has_value());
  ASSERT_EQ(content->rfind("bfmodel 3\n", 0), 0u);

  std::string v2 = *content;
  v2.replace(0, std::string("bfmodel 3").size(), "bfmodel 2");
  const serve::ModelBundle loaded = serve::bundle_from_string(v2, "test");
  EXPECT_FALSE(loaded.power.has_value());
  for (const double size : {20000.0, 65536.0, 262144.0}) {
    EXPECT_EQ(shared_time().predict_guarded(size).value,
              loaded.predictor.predict_guarded(size).value);
  }
}

TEST_F(PowerArtifactTest, ServeRepliesCarryPowerFields) {
  serve::export_model(bundle_path("pw"), "pw", "reduce1", "gtx580",
                      shared_sweep().num_rows(), shared_time(), 5,
                      &shared_power());
  serve::export_model(bundle_path("plain"), "plain", "reduce1", "gtx580",
                      shared_sweep().num_rows(), shared_time());

  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);

  const std::string with_power =
      server.handle_line(R"({"model":"pw","size":65536})");
  const auto reply = serve::parse_json(with_power);
  ASSERT_NE(reply.find("power_w"), nullptr) << with_power;
  ASSERT_NE(reply.find("energy_j"), nullptr) << with_power;
  ASSERT_NE(reply.find("power_grade"), nullptr) << with_power;
  const gpusim::ArchSpec spec = gpusim::arch_by_name("gtx580");
  EXPECT_GE(reply.find("power_w")->number, spec.idle_w - 1e-9);
  EXPECT_LE(reply.find("power_w")->number, spec.tdp_w + 1e-9);
  // energy = power x predicted time, straight from the reply's own rows.
  EXPECT_DOUBLE_EQ(
      reply.find("energy_j")->number,
      reply.find("power_w")->number * reply.find("predicted_ms")->number *
          1e-3);

  const std::string plain =
      server.handle_line(R"({"model":"plain","size":65536})");
  EXPECT_EQ(plain.find("power_w"), std::string::npos) << plain;
  EXPECT_EQ(plain.find("energy_j"), std::string::npos) << plain;

  // The stats verb advertises which bundles carry the power record.
  const auto stats = serve::parse_json(server.handle_line(R"({"cmd":"stats"})"));
  const serve::JsonValue* models = stats.find("models");
  ASSERT_NE(models, nullptr);
  bool saw_pw = false, saw_plain = false;
  for (const auto& m : models->array) {
    if (m.find("name")->str == "pw") {
      saw_pw = true;
      EXPECT_TRUE(m.find("power")->boolean);
    }
    if (m.find("name")->str == "plain") {
      saw_plain = true;
      EXPECT_FALSE(m.find("power")->boolean);
    }
  }
  EXPECT_TRUE(saw_pw);
  EXPECT_TRUE(saw_plain);
}

TEST_F(PowerArtifactTest, AnnotateSeriesFillsPowerRows) {
  core::PredictionSeries series;
  for (const double size : {32768.0, 131072.0, 524288.0}) {
    const auto rec = shared_time().predict_guarded(size);
    series.sizes.push_back(size);
    series.predicted_ms.push_back(rec.value);
    series.guard.predictions.push_back(rec);
  }
  power::annotate_series(series, shared_power());
  ASSERT_EQ(series.power_w.size(), series.sizes.size());
  ASSERT_EQ(series.energy_j.size(), series.sizes.size());
  ASSERT_EQ(series.power_guard.size(), series.sizes.size());
  for (std::size_t i = 0; i < series.sizes.size(); ++i) {
    EXPECT_GT(series.power_w[i], 0.0);
    EXPECT_DOUBLE_EQ(series.energy_j[i],
                     series.power_w[i] * series.predicted_ms[i] * 1e-3);
  }
}

}  // namespace
}  // namespace bf
