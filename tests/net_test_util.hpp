// Shared helpers for the connection-layer tests: a blocking NDJSON test
// client (Unix or TCP) and a NetServer running on a background thread.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "serve/conn.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"

namespace bf::serve::testutil {

/// A deliberately simple blocking client: the tests drive precise byte
/// sequences (partial requests, slow dribbles, half-closes) against the
/// non-blocking server.
class TestClient {
 public:
  static TestClient connect_unix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    BF_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    BF_CHECK_MSG(path.size() < sizeof(addr.sun_path), "path too long");
    path.copy(addr.sun_path, path.size());
    BF_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect(" << path << "): " << std::strerror(errno));
    return TestClient(fd);
  }

  static TestClient connect_tcp(const std::string& host, std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BF_CHECK_MSG(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    BF_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "bad host: " << host);
    BF_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect(" << host << ":" << port
                            << "): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TestClient(fd);
  }

  explicit TestClient(int fd) : fd_(fd) {}
  ~TestClient() { close(); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;
  TestClient(TestClient&& other) noexcept
      : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }

  bool send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const int w = send_some(fd_, data.data() + off, data.size() - off);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w == kIoWouldBlock) continue;  // blocking fd: cannot happen
      return false;
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Read one complete reply line within timeout_ms; false on timeout,
  /// EOF or error without a complete line pending.
  bool read_line(std::string& line, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;
      char chunk[4096];
      const int r = read_some(fd_, chunk, sizeof(chunk));
      if (r > 0) {
        buf_.append(chunk, static_cast<std::size_t>(r));
        continue;
      }
      if (r == kIoWouldBlock) continue;
      return false;
    }
  }

  /// True when the server closes our end within timeout_ms (any buffered
  /// bytes are drained first).
  bool eof_within(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;
      char chunk[4096];
      const int r = read_some(fd_, chunk, sizeof(chunk));
      if (r == kIoEof) return true;
      if (r == kIoPeerGone) return true;  // reset also counts as closed
      if (r > 0) buf_.append(chunk, static_cast<std::size_t>(r));
    }
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  std::string buf_;
};

/// A NetServer serving on a background thread; stop() drains it and
/// returns run()'s exit code.
class RunningNetServer {
 public:
  RunningNetServer(Server& server, const NetServerOptions& options)
      : net_(server, options) {
    server.attach_net(&net_.counters());
    thread_ = std::thread([this] { rc_ = net_.run(); });
  }

  ~RunningNetServer() {
    if (thread_.joinable()) stop();
  }

  int stop() {
    net_.request_stop();
    thread_.join();
    return rc_;
  }

  NetServer& net() { return net_; }
  const NetCounters& counters() const { return net_.counters(); }

 private:
  NetServer net_;
  std::thread thread_;
  int rc_ = -1;
};

}  // namespace bf::serve::testutil
