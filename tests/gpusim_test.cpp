// Tests for the GPU simulator building blocks: architecture registry,
// occupancy, coalescing, caches, shared-memory conflicts, counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/sharedmem.hpp"

namespace bf::gpusim {
namespace {

std::array<std::uint32_t, 32> addrs(std::uint32_t base, std::uint32_t stride) {
  std::array<std::uint32_t, 32> a{};
  for (int i = 0; i < 32; ++i) {
    a[static_cast<std::size_t>(i)] = base + static_cast<std::uint32_t>(i) * stride;
  }
  return a;
}

WarpInstr mem_instr(Op op, std::uint32_t mask,
                    const std::array<std::uint32_t, 32>& a,
                    std::uint8_t bytes = 4) {
  WarpInstr in;
  in.op = op;
  in.mask = mask;
  in.access_bytes = bytes;
  in.addr = a;
  return in;
}

// ---- architecture registry (Table 2) ----

TEST(Arch, RegistryContainsPaperGpus) {
  EXPECT_NO_THROW(arch_by_name("gtx580"));
  EXPECT_NO_THROW(arch_by_name("gtx480"));
  EXPECT_NO_THROW(arch_by_name("k20m"));
  EXPECT_NO_THROW(arch_by_name("k40"));
  EXPECT_THROW(arch_by_name("voodoo3"), Error);
}

TEST(Arch, Table2MachineMetrics) {
  // The GTX480 and K20m columns of the paper's Table 2.
  const ArchSpec f = gtx480();
  EXPECT_EQ(f.warp_schedulers_per_sm, 2);
  EXPECT_NEAR(f.clock_ghz, 1.4, 1e-9);
  EXPECT_EQ(f.sm_count, 15);
  EXPECT_EQ(f.cores_per_sm, 32);
  EXPECT_NEAR(f.mem_bandwidth_gbs, 177.4, 1e-9);
  EXPECT_EQ(f.max_registers_per_thread, 63);
  EXPECT_EQ(f.l2_size_kb, 768);

  const ArchSpec k = kepler_k20m();
  EXPECT_EQ(k.warp_schedulers_per_sm, 4);
  EXPECT_EQ(k.sm_count, 13);
  EXPECT_EQ(k.cores_per_sm, 192);
  EXPECT_NEAR(k.mem_bandwidth_gbs, 208.0, 1e-9);
  EXPECT_EQ(k.max_registers_per_thread, 255);
  EXPECT_EQ(k.l2_size_kb, 1280);
}

TEST(Arch, GenerationCounterDifferences) {
  EXPECT_TRUE(gtx580().l1_caches_global_loads);
  EXPECT_FALSE(kepler_k20m().l1_caches_global_loads);
}

TEST(Arch, IssueCycles) {
  EXPECT_EQ(gtx580().arith_issue_cycles(), 2);  // 32 / (32/2)
  EXPECT_EQ(kepler_k20m().arith_issue_cycles(), 1);
}

TEST(Arch, MachineCharacteristicsColumns) {
  const auto cols = machine_characteristics(gtx480());
  ASSERT_EQ(cols.size(), 7u);
  EXPECT_EQ(cols[0].first, "wsched");
  EXPECT_DOUBLE_EQ(cols[0].second, 2.0);
  EXPECT_EQ(cols[4].first, "mbw");
  EXPECT_DOUBLE_EQ(cols[4].second, 177.4);
}

// ---- occupancy ----

TEST(Occupancy, WarpLimited) {
  // 256-thread blocks, tiny shared/register use: Fermi fits 48/8 = 6
  // blocks by warps (block limit is 8).
  LaunchGeometry g;
  g.block_x = 256;
  g.registers_per_thread = 16;
  g.shared_mem_per_block = 1024;
  const auto occ = compute_occupancy(gtx580(), g);
  EXPECT_EQ(occ.blocks_per_sm, 6);
  EXPECT_EQ(occ.warps_per_sm, 48);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
  EXPECT_STREQ(occ.limiter, "warps");
}

TEST(Occupancy, SharedMemoryLimited) {
  LaunchGeometry g;
  g.block_x = 64;
  g.registers_per_thread = 16;
  g.shared_mem_per_block = 24 * 1024;  // 48 KB SM -> 2 blocks
  const auto occ = compute_occupancy(gtx580(), g);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, RegisterLimited) {
  LaunchGeometry g;
  g.block_x = 256;
  g.registers_per_thread = 63;
  // 63*256 = 16128 regs per block; 32768/16128 -> 2 blocks.
  const auto occ = compute_occupancy(gtx580(), g);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, BlockSlotLimited) {
  // Tiny 16-thread NW-style blocks: limited by the 8-block slot cap on
  // Fermi -> 8 * 1 warp (half full) resident.
  LaunchGeometry g;
  g.block_x = 16;
  g.registers_per_thread = 28;
  g.shared_mem_per_block = 2048;
  const auto occ = compute_occupancy(gtx580(), g);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_STREQ(occ.limiter, "blocks");
  EXPECT_LT(occ.occupancy, 0.2);  // the paper's low-occupancy NW story
}

TEST(Occupancy, KeplerAllowsMoreBlocks) {
  LaunchGeometry g;
  g.block_x = 16;
  g.registers_per_thread = 28;
  const auto f = compute_occupancy(gtx580(), g);
  const auto k = compute_occupancy(kepler_k20m(), g);
  EXPECT_GT(k.blocks_per_sm, f.blocks_per_sm);
}

TEST(Occupancy, ImpossibleLaunchRejected) {
  LaunchGeometry g;
  g.block_x = 2048;  // exceeds 1024 threads/block
  EXPECT_THROW(compute_occupancy(gtx580(), g), Error);
  LaunchGeometry s;
  s.block_x = 64;
  s.shared_mem_per_block = 64 * 1024;
  EXPECT_THROW(compute_occupancy(gtx580(), s), Error);
}

// ---- coalescer ----

TEST(Coalescer, FullyCoalescedSingleSegment) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(0, 4));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 1);
  EXPECT_EQ(coalesced_transaction_count(in, 32), 4);
}

TEST(Coalescer, MisalignedAccessTouchesTwoSegments) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(64, 4));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 2);
}

TEST(Coalescer, Stride2DoublesSegments) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(0, 8));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 2);
}

TEST(Coalescer, FullyScattered) {
  // Column access with a large stride: one transaction per lane.
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(0, 4096));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 32);
  EXPECT_EQ(coalesced_transaction_count(in, 32), 32);
}

TEST(Coalescer, InactiveLanesIgnored) {
  const auto in = mem_instr(Op::kLdGlobal, 0x1u, addrs(0, 4096));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 1);
}

TEST(Coalescer, BroadcastSameAddress) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(256, 0));
  EXPECT_EQ(coalesced_transaction_count(in, 128), 1);
}

TEST(Coalescer, StraddlingElementCountsBothSegments) {
  // An 8-byte access at offset 124 crosses the 128 B boundary.
  std::array<std::uint32_t, 32> a{};
  a[0] = 124;
  const auto in = mem_instr(Op::kLdGlobal, 0x1u, a, 8);
  EXPECT_EQ(coalesced_transaction_count(in, 128), 2);
}

TEST(Coalescer, SegmentBasesAligned) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(100, 4));
  for (const auto seg : coalesce(in, 128)) {
    EXPECT_EQ(seg % 128, 0u);
  }
  EXPECT_THROW(coalesce(in, 100), Error);  // not a power of two
}

class CoalescerStride : public ::testing::TestWithParam<int> {};

TEST_P(CoalescerStride, TransactionCountMatchesClosedForm) {
  const int stride = GetParam();
  const auto in = mem_instr(
      Op::kLdGlobal, kFullMask,
      addrs(0, static_cast<std::uint32_t>(stride) * 4));
  // 32 lanes, 4-byte elements, stride in elements, base aligned:
  // distinct 128 B segments = ceil(32 * stride * 4 / 128) capped at 32.
  const int expected =
      std::min(32, (32 * stride * 4 + 127) / 128);
  EXPECT_EQ(coalesced_transaction_count(in, 128), expected);
}

INSTANTIATE_TEST_SUITE_P(Strides, CoalescerStride,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

// ---- cache ----

TEST(Cache, MissThenHit) {
  Cache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(64, false).hit);  // same line
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  // 2-way set: three distinct lines mapping to one set evict the LRU.
  Cache c(2 * 128, 128, 2);  // exactly one set
  c.access(0, false);
  c.access(128, false);
  c.access(0, false);        // touch line 0 -> line 128 becomes LRU
  c.access(256, false);      // evicts 128
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(128, false).hit);
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(2 * 128, 128, 2);
  c.access(0, true);  // dirty
  c.access(128, false);
  const auto r = c.access(256, false);  // evicts dirty line 0
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, FlushDirtyCountsAndClears) {
  Cache c(4 * 128, 128, 4);
  c.access(0, true);
  c.access(128, true);
  c.access(256, false);
  EXPECT_EQ(c.flush_dirty(), 2u);
  EXPECT_EQ(c.flush_dirty(), 0u);
}

TEST(Cache, ProbeDoesNotAllocate) {
  Cache c(1024, 128, 2);
  EXPECT_FALSE(c.probe(0));
  EXPECT_EQ(c.stats().misses, 0u);
  c.access(0, false);
  EXPECT_TRUE(c.probe(0));
}

TEST(Cache, ZeroSizeAlwaysMisses) {
  Cache c(0, 128, 4);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, WorkingSetSweep) {
  // Working sets smaller than the cache hit on re-traversal; larger ones
  // thrash (LRU + sequential scan = worst case).
  Cache c(16 * 1024, 128, 8);
  const auto traverse = [&](std::uint64_t lines) {
    for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 128, false);
  };
  traverse(64);   // 8 KB working set, cold
  const auto before = c.stats().hits;
  traverse(64);   // fits in 16 KB: all hits
  EXPECT_EQ(c.stats().hits - before, 64u);

  c.reset();
  traverse(256);  // 32 KB working set
  const auto before2 = c.stats().hits;
  traverse(256);
  EXPECT_EQ(c.stats().hits - before2, 0u);  // fully thrashed
}

TEST(Cache, InvalidConfigRejected) {
  EXPECT_THROW(Cache(1024, 100, 2), Error);
  EXPECT_THROW(Cache(1024, 128, 0), Error);
}

// ---- shared memory ----

TEST(SharedMem, ConsecutiveWordsConflictFree) {
  const auto in = mem_instr(Op::kLdShared, kFullMask, addrs(0, 4));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 1);
}

TEST(SharedMem, BroadcastIsFree) {
  const auto in = mem_instr(Op::kLdShared, kFullMask, addrs(128, 0));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 1);
}

TEST(SharedMem, Stride2TwoWayConflict) {
  const auto in = mem_instr(Op::kStShared, kFullMask, addrs(0, 8));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 2);
  EXPECT_EQ(shared_conflict_replays(in, gtx580()), 1);
}

TEST(SharedMem, Stride32FullSerialisation) {
  // Word stride 32: every lane hits bank 0 with a distinct word.
  const auto in = mem_instr(Op::kLdShared, kFullMask, addrs(0, 128));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 32);
}

TEST(SharedMem, PaddedStride33ConflictFree) {
  // The tile[32][33] trick: stride 33 words visits all banks.
  const auto in = mem_instr(Op::kLdShared, kFullMask, addrs(0, 33 * 4));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 1);
}

TEST(SharedMem, MaskedLanesDontConflict) {
  // Only 4 active lanes at stride 32 words -> 4 passes, not 32.
  const auto in = mem_instr(Op::kLdShared, 0xFu, addrs(0, 128));
  EXPECT_EQ(shared_access_passes(in, gtx580()), 4);
}

TEST(SharedMem, NonSharedOpRejected) {
  const auto in = mem_instr(Op::kLdGlobal, kFullMask, addrs(0, 4));
  EXPECT_THROW(shared_access_passes(in, gtx580()), Error);
}

class SharedStrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(SharedStrideSweep, PassesMatchGcdFormula) {
  const int stride = GetParam();
  const auto in = mem_instr(
      Op::kLdShared, kFullMask,
      addrs(0, static_cast<std::uint32_t>(stride) * 4));
  // For word stride s over 32 banks and 32 lanes with distinct words,
  // the conflict degree is gcd-based: lanes per bank = 32 / (32/gcd(s,32))
  // = gcd(s, 32).
  const int expected = std::gcd(stride, 32);
  EXPECT_EQ(shared_access_passes(in, gtx580()), expected);
}

INSTANTIATE_TEST_SUITE_P(Strides, SharedStrideSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 16, 32));

// ---- counters ----

TEST(Counters, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    names.insert(event_name(static_cast<Event>(i)));
  }
  EXPECT_EQ(names.size(), kNumEvents);
  EXPECT_STREQ(event_name(Event::kInstExecuted), "inst_executed");
}

TEST(Counters, AccumulateAndScale) {
  CounterSet a;
  a.add(Event::kGldRequest, 10);
  CounterSet b;
  b.add(Event::kGldRequest, 5);
  b.add(Event::kGstRequest, 2);
  a.accumulate(b);
  EXPECT_DOUBLE_EQ(a.get(Event::kGldRequest), 15.0);
  EXPECT_DOUBLE_EQ(a.get(Event::kGstRequest), 2.0);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a.get(Event::kGldRequest), 30.0);
}

TEST(Counters, NamedExport) {
  CounterSet c;
  c.set(Event::kBranch, 7);
  const auto named = c.named();
  EXPECT_EQ(named.size(), kNumEvents);
  bool found = false;
  for (const auto& [name, value] : named) {
    if (name == "branch") {
      EXPECT_DOUBLE_EQ(value, 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bf::gpusim
