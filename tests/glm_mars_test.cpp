// Tests for the GLM and MARS counter-model substrates.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/linear_model.hpp"
#include "ml/mars.hpp"
#include "ml/metrics.hpp"

namespace bf::ml {
namespace {

linalg::Matrix column_matrix(const std::vector<double>& x) {
  linalg::Matrix m(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) m(i, 0) = x[i];
  return m;
}

// ---- GLM ----

TEST(Glm, ExactLinearFit) {
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    xs.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  Glm glm;
  GlmParams params;
  params.degree = 1;
  params.log_terms = false;
  glm.fit(column_matrix(xs), y, params);
  EXPECT_NEAR(glm.residual_deviance(), 0.0, 1e-12);
  EXPECT_NEAR(glm.r_squared(), 1.0, 1e-12);
  const double probe[1] = {20.0};
  EXPECT_NEAR(glm.predict_row(probe, 1), 43.0, 1e-9);
}

TEST(Glm, QuadraticBasisFitsParabola) {
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    y.push_back(1.0 - 2.0 * i + 0.5 * i * i);
  }
  Glm glm;
  GlmParams params;
  params.degree = 2;
  params.log_terms = false;
  glm.fit(column_matrix(xs), y, params);
  EXPECT_NEAR(glm.residual_deviance(), 0.0, 1e-9);
}

TEST(Glm, LogLinkFitsExponentialGrowth) {
  // y = 2 * 1.5^x: exactly log-linear.
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i <= 12; ++i) {
    xs.push_back(i);
    y.push_back(2.0 * std::pow(1.5, i));
  }
  Glm glm;
  GlmParams params;
  params.link = LinkFunction::kLog;
  params.degree = 1;
  params.log_terms = false;
  glm.fit(column_matrix(xs), y, params);
  const double probe[1] = {14.0};
  const double expected = 2.0 * std::pow(1.5, 14);
  EXPECT_NEAR(glm.predict_row(probe, 1) / expected, 1.0, 1e-6);
}

TEST(Glm, LogLinkRejectsNonPositive) {
  Glm glm;
  GlmParams params;
  params.link = LinkFunction::kLog;
  EXPECT_THROW(glm.fit(column_matrix({1, 2, 3, 4}), {1.0, 2.0, 0.0, 3.0},
                       params),
               Error);
}

TEST(Glm, DevianceDecomposition) {
  Rng rng(1);
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i);
    y.push_back(2.0 * i + rng.normal(0.0, 3.0));
  }
  Glm glm;
  glm.fit(column_matrix(xs), y);
  EXPECT_GT(glm.null_deviance(), glm.residual_deviance());
  EXPECT_GT(glm.r_squared(), 0.9);
  EXPECT_LT(glm.r_squared(), 1.0);
}

TEST(Glm, InputValidation) {
  Glm glm;
  EXPECT_THROW(glm.fit(column_matrix({1}), {1.0}), Error);
  glm.fit(column_matrix({1, 2, 3, 4}), {1, 2, 3, 4});
  const double row[2] = {1.0, 2.0};
  EXPECT_THROW(glm.predict_row(row, 2), Error);  // arity mismatch
}

// ---- MARS ----

TEST(Mars, FitsHingeFunctionExactly) {
  // y = 3 + 2*max(x - 5, 0): a single hinge.
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    y.push_back(3.0 + 2.0 * std::max(i - 5.0, 0.0));
  }
  Mars mars;
  mars.fit(column_matrix(xs), y);
  EXPECT_GT(mars.r_squared(), 0.999);
  const double probe[1] = {10.0};
  EXPECT_NEAR(mars.predict_row(probe, 1), 13.0, 0.2);
  const double left[1] = {2.0};
  EXPECT_NEAR(mars.predict_row(left, 1), 3.0, 0.2);
}

TEST(Mars, BeatsLinearOnPiecewiseData) {
  // V-shaped response defeats a straight line.
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    xs.push_back(i);
    y.push_back(std::fabs(i));
  }
  const auto x = column_matrix(xs);
  Mars mars;
  mars.fit(x, y);
  Glm line;
  GlmParams lp;
  lp.degree = 1;
  lp.log_terms = false;
  line.fit(x, y, lp);
  const double mars_mse = mse(y, mars.predict(x));
  const double line_mse = mse(y, line.predict(x));
  EXPECT_LT(mars_mse, 0.05 * line_mse);
}

TEST(Mars, AdditiveTwoVariableRecovery) {
  Rng rng(2);
  linalg::Matrix x(80, 2);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = 2.0 * std::max(x(i, 0) - 4.0, 0.0) +
           1.0 * std::max(6.0 - x(i, 1), 0.0);
  }
  Mars mars;
  mars.fit(x, y);
  EXPECT_GT(mars.r_squared(), 0.98);
}

TEST(Mars, InteractionTerm) {
  // y = max(x0-3,0)*max(x1-3,0) requires a degree-2 term.
  Rng rng(3);
  linalg::Matrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(0, 8);
    x(i, 1) = rng.uniform(0, 8);
    y[i] = std::max(x(i, 0) - 3.0, 0.0) * std::max(x(i, 1) - 3.0, 0.0);
  }
  MarsParams additive;
  additive.max_degree = 1;
  Mars flat;
  flat.fit(x, y, additive);
  Mars inter;
  MarsParams ip;
  ip.max_degree = 2;
  inter.fit(x, y, ip);
  EXPECT_GT(inter.r_squared(), flat.r_squared());
  EXPECT_GT(inter.r_squared(), 0.95);
}

TEST(Mars, ConstantResponseInterceptOnly) {
  Mars mars;
  mars.fit(column_matrix({1, 2, 3, 4, 5}), std::vector<double>(5, 7.0));
  EXPECT_EQ(mars.num_terms(), 1u);
  const double probe[1] = {3.0};
  EXPECT_DOUBLE_EQ(mars.predict_row(probe, 1), 7.0);
}

TEST(Mars, ToStringMentionsHinges) {
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    y.push_back(std::max(i - 10.0, 0.0));
  }
  Mars mars;
  mars.fit(column_matrix(xs), y);
  const std::string s = mars.to_string({"len"});
  EXPECT_NE(s.find("h("), std::string::npos);
  EXPECT_NE(s.find("len"), std::string::npos);
}

TEST(Mars, InputValidation) {
  Mars mars;
  EXPECT_THROW(mars.fit(column_matrix({1, 2, 3}), {1, 2, 3}), Error);
  const double row[1] = {1.0};
  EXPECT_THROW(mars.predict_row(row, 1), Error);  // unfitted
}

class MarsMaxTerms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarsMaxTerms, RespectsTermBudget) {
  Rng rng(4);
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(i);
    y.push_back(std::sin(i * 0.4) * 5.0 + rng.normal(0.0, 0.2));
  }
  MarsParams params;
  params.max_terms = GetParam();
  Mars mars;
  mars.fit(column_matrix(xs), y, params);
  EXPECT_LE(mars.num_terms(), GetParam());
  EXPECT_GE(mars.num_terms(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, MarsMaxTerms,
                         ::testing::Values(3u, 7u, 11u, 21u));

}  // namespace
}  // namespace bf::ml
