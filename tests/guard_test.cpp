// Guard-layer suite: domain hulls, confidence grading, physical caps,
// counter-model fallback chains, and the guarded problem-scaling path.
//
// The bit-identity contract is regression-tested against a stored
// pre-guard baseline: with no guard tripped (and with the guard off),
// the reduce1 predictions must reproduce the legacy numbers exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/counter_models.hpp"
#include "core/predictor.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/engine.hpp"
#include "guard/guard.hpp"
#include "guard/physical.hpp"
#include "ml/dataset.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

namespace bf {
namespace {

using profiling::kSizeColumn;
using profiling::kTimeColumn;

// ---- DomainGuard ----

TEST(DomainGuard, HullBoundaryDetection) {
  ml::Dataset ds;
  ds.add_column("size", {100, 200, 300, 400});
  ds.add_column("flat", {5, 5, 5, 5});
  const auto hull = guard::DomainGuard::build(ds, {"size", "flat"}, 0.1);
  ASSERT_EQ(hull.ranges().size(), 2u);
  ASSERT_NE(hull.range("size"), nullptr);
  EXPECT_EQ(hull.range("size")->lo, 100.0);
  EXPECT_EQ(hull.range("size")->hi, 400.0);

  // Span 300, margin 10% -> hull [70, 430]; the edges are still inside.
  EXPECT_TRUE(hull.check_value("size", 430.0).empty());
  EXPECT_TRUE(hull.check_value("size", 70.0).empty());
  EXPECT_TRUE(hull.check_value("size", 250.0).empty());

  const auto above = hull.check_value("size", 500.0);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_EQ(above[0].feature, "size");
  EXPECT_NEAR(above[0].distance, 70.0 / 300.0, 1e-12);

  const auto below = hull.check_value("size", 10.0);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_NEAR(below[0].distance, 60.0 / 300.0, 1e-12);

  // A constant feature has zero span: distances are absolute.
  const auto flat = hull.check_value("flat", 6.5);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_NEAR(flat[0].distance, 1.5, 1e-12);

  // Untracked features and non-finite queries never flag.
  EXPECT_TRUE(hull.check_value("unknown", 1e18).empty());
  EXPECT_TRUE(hull.check_value("size", std::nan("")).empty());
}

TEST(DomainGuard, CheckRowCoversEveryTrackedColumn) {
  ml::Dataset train;
  train.add_column("a", {0, 1, 2});
  train.add_column("b", {10, 20, 30});
  const auto hull = guard::DomainGuard::build(train, {"a", "b"}, 0.0);

  ml::Dataset query;
  query.add_column("a", {5});   // out of hull
  query.add_column("b", {25});  // in hull
  const auto flags = hull.check_row(query, 0);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].feature, "a");
}

// ---- grading ----

TEST(GradePrediction, EvidenceMapsToGrades) {
  const guard::GuardOptions opts;  // interval_b=1.0, interval_c=2.5, far=0.5
  guard::PredictionGuardRecord rec;
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kA);

  rec.interval_width = 0.6;
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kA);
  rec.interval_width = 1.2;
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kB);
  rec.interval_width = 3.0;
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kC);

  rec = {};
  rec.demotions.push_back("c: mars -> glm (non-finite)");
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kB);

  rec = {};
  rec.extrapolated = true;
  rec.flags.push_back({"size", 1e7, 0.3});
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kB);
  rec.flags[0].distance = 0.7;  // beyond `far`
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kC);

  rec = {};
  rec.clamps.push_back("ipc: 9 -> 2 (IPC <= issue width)");
  EXPECT_EQ(guard::grade_prediction(rec, opts), guard::Grade::kC);

  EXPECT_EQ(guard::worse(guard::Grade::kA, guard::Grade::kC),
            guard::Grade::kC);
  EXPECT_EQ(guard::grade_letter(guard::Grade::kB), 'B');
}

// ---- physical caps ----

const guard::PhysicalCap* find_cap(const std::vector<guard::PhysicalCap>& caps,
                                   const std::string& name) {
  for (const auto& c : caps) {
    if (c.counter == name) return &c;
  }
  return nullptr;
}

TEST(PhysicalCaps, StaticCapsFromBothArchSpecs) {
  // GTX580 (Fermi): 2 schedulers x 1 dispatch unit -> IPC <= 2.
  const auto fermi = guard::static_caps(gpusim::gtx580());
  const auto* fermi_ipc = find_cap(fermi, "ipc");
  ASSERT_NE(fermi_ipc, nullptr);
  EXPECT_EQ(fermi_ipc->max_value, 2.0);
  const auto* fermi_bw = find_cap(fermi, "dram_read_throughput");
  ASSERT_NE(fermi_bw, nullptr);
  EXPECT_EQ(fermi_bw->max_value, 192.4);

  // K20m (Kepler): 4 schedulers x 2 dispatch units -> IPC <= 8.
  const auto kepler = guard::static_caps(gpusim::kepler_k20m());
  const auto* kepler_ipc = find_cap(kepler, "ipc");
  ASSERT_NE(kepler_ipc, nullptr);
  EXPECT_EQ(kepler_ipc->max_value, 8.0);
  const auto* kepler_bw = find_cap(kepler, "dram_write_throughput");
  ASSERT_NE(kepler_bw, nullptr);
  EXPECT_EQ(kepler_bw->max_value, 208.0);

  // Ratio metrics ride along in both.
  EXPECT_NE(find_cap(fermi, "achieved_occupancy"), nullptr);
  const auto* kepler_occ = find_cap(kepler, "achieved_occupancy");
  ASSERT_NE(kepler_occ, nullptr);
  EXPECT_EQ(kepler_occ->max_value, 1.0);
}

TEST(PhysicalCaps, TimeCapsBoundTransactionsAndInstructions) {
  const auto arch = gpusim::gtx580();
  const double time_ms = 1.0;
  const auto caps = guard::time_caps(arch, time_ms);

  const auto* tx = find_cap(caps, "dram_read_transactions");
  ASSERT_NE(tx, nullptr);
  // bandwidth x time / 32-byte segments.
  EXPECT_NEAR(tx->max_value, 192.4e9 * 1e-3 / 32.0, 1e-3);

  const auto* inst = find_cap(caps, "inst_executed");
  ASSERT_NE(inst, nullptr);
  // SMs x schedulers x dispatch x clock x time.
  EXPECT_NEAR(inst->max_value, 16.0 * 2.0 * 1.0 * 1.544e9 * 1e-3, 1e-3);

  // No predicted time, no time caps.
  EXPECT_TRUE(guard::time_caps(arch, 0.0).empty());
  EXPECT_TRUE(guard::time_caps(arch, -1.0).empty());
}

TEST(PhysicalCaps, ClampRowHonoursTolerance) {
  ml::Dataset features;
  features.add_column("achieved_occupancy", {1.01});
  features.add_column("ipc", {9.0});
  features.add_column("untouched", {123.0});
  const auto caps = guard::static_caps(gpusim::gtx580());

  const auto events = guard::clamp_row_to_caps(features, 0, caps, 0.02);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].counter, "ipc");
  EXPECT_EQ(events[0].from, 9.0);
  EXPECT_EQ(events[0].to, 2.0);
  // Within-tolerance occupancy is left alone; the violating value was
  // clamped in place; unrelated columns are untouched.
  EXPECT_EQ(features.column("achieved_occupancy")[0], 1.01);
  EXPECT_EQ(features.column("ipc")[0], 2.0);
  EXPECT_EQ(features.column("untouched")[0], 123.0);
}

// ---- counter-model fallback chains ----

TEST(CounterModelChain, ChainIsFitAndRankedByCv) {
  // A clean power law: every candidate can model it, so the chain holds
  // all four kinds with the legacy-selected primary first.
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> y;
  for (double s = 64; s <= 65536; s *= 2) {
    sizes.push_back(s);
    y.push_back(2.0 * std::pow(s, 1.5));
  }
  ds.add_column("size", sizes);
  ds.add_column("flops", y);

  core::CounterModelOptions opts;
  opts.fit_fallback_chain = true;
  const auto models = core::CounterModels::fit(ds, {"flops"}, opts);
  ASSERT_EQ(models.num_entries(), 1u);
  EXPECT_EQ(models.entry_counter(0), "flops");

  const auto& chain = models.entry_chain(0);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.front(), models.info()[0].chosen);
  for (const auto kind :
       {core::CounterModelKind::kGlm, core::CounterModelKind::kMars,
        core::CounterModelKind::kLogLinear,
        core::CounterModelKind::kPowerLaw}) {
    EXPECT_NE(std::find(chain.begin(), chain.end(), kind), chain.end())
        << counter_model_name(kind);
  }
  EXPECT_EQ(models.info()[0].chain, chain);
  EXPECT_TRUE(std::isfinite(models.info()[0].cv_rmse));

  // The power-law fallback extrapolates the law through the two largest
  // training points, far beyond the training range.
  const double far = 4.0 * 65536;
  const double expected = 2.0 * std::pow(far, 1.5);
  const double pl =
      models.predict_kind(0, core::CounterModelKind::kPowerLaw, {far});
  EXPECT_NEAR(pl, expected, 0.01 * expected);
}

TEST(CounterModelChain, EveryPredictionExitsNonNegative) {
  // A decreasing line goes negative under extrapolation; the single exit
  // point must clamp it to zero and report the clamp.
  ml::Dataset ds;
  ds.add_column("size", {10, 20, 30, 40});
  ds.add_column("stalls", {90, 80, 70, 60});  // 100 - size

  core::CounterModelOptions opts;
  opts.kind = core::CounterModelKind::kGlm;
  opts.log_inputs = false;
  opts.auto_log_response = false;
  opts.glm.degree = 1;
  opts.glm.log_terms = false;
  const auto models = core::CounterModels::fit(ds, {"stalls"}, opts);
  ASSERT_EQ(models.num_entries(), 1u);

  bool negative_clamped = false;
  const double v = models.predict_kind(0, core::CounterModelKind::kGlm,
                                       {500.0}, &negative_clamped);
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(negative_clamped);

  // The bulk predict path shares the same exit.
  const auto pairs = models.predict({500.0});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_GE(pairs[0].second, 0.0);

  // In-range predictions are untouched (and report no clamp).
  negative_clamped = true;
  const double mid = models.predict_kind(0, core::CounterModelKind::kGlm,
                                         {25.0}, &negative_clamped);
  EXPECT_NEAR(mid, 75.0, 1e-6);
  EXPECT_FALSE(negative_clamped);
}

TEST(CounterModelChain, FallbackChainRecordsPrimaryCvError) {
  // Noisy but monotone data: whatever the exact CV ranking, the chain is
  // a permutation of all four kinds with the primary first, and the
  // primary's CV RMSE is recorded for the guard report.
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> y;
  double jitter = 0.02;
  for (double s = 128; s <= 131072; s *= 2) {
    sizes.push_back(s);
    y.push_back(3.0 * s * (1.0 + jitter));
    jitter = -jitter;
  }
  ds.add_column("size", sizes);
  ds.add_column("bytes", y);

  core::CounterModelOptions opts;
  opts.fit_fallback_chain = true;
  const auto models = core::CounterModels::fit(ds, {"bytes"}, opts);
  const auto& info = models.info()[0];
  ASSERT_EQ(info.chain.size(), 4u);
  EXPECT_EQ(info.chain.front(), info.chosen);
  EXPECT_GT(info.cv_rmse, 0.0);
  EXPECT_TRUE(std::isfinite(info.cv_rmse));
}

// ---- the guarded problem-scaling path ----

const ml::Dataset& reduce1_sweep() {
  static const ml::Dataset ds = [] {
    const gpusim::Device dev(gpusim::gtx580());
    return profiling::sweep(profiling::workload_by_name("reduce1"), dev,
                            profiling::log2_sizes(1 << 14, 1 << 22, 16, 256));
  }();
  return ds;
}

core::ProblemScalingOptions guarded_options() {
  core::ProblemScalingOptions pso;
  pso.model.forest.n_trees = 120;
  pso.arch = gpusim::gtx580();
  return pso;
}

const core::ProblemScalingPredictor& guarded_predictor() {
  static const core::ProblemScalingPredictor p =
      core::ProblemScalingPredictor::build(reduce1_sweep(),
                                           guarded_options());
  return p;
}

// Pre-guard baseline: reduce1 on gtx580, sizes log2_sizes(2^14, 2^22, 16,
// 256), 120 trees — captured at the commit before the guard layer landed.
// The guard-off path and the untripped guarded path must both reproduce
// these numbers exactly.
const std::vector<std::pair<double, double>> kReduce1Baseline = {
    {32768, 0.0051066325251370431},  {65536, 0.0083086092245588036},
    {131072, 0.014143468900777414},  {524288, 0.051980062173440054},
    {1048576, 0.076073059993285869}, {2097152, 0.1957913344543703},
};

TEST(GuardedPredictor, GuardOffPathMatchesPreGuardBaseline) {
  core::ProblemScalingOptions pso;
  pso.model.forest.n_trees = 120;
  pso.guard.enabled = false;
  const auto predictor =
      core::ProblemScalingPredictor::build(reduce1_sweep(), pso);
  for (const auto& [size, expected] : kReduce1Baseline) {
    EXPECT_DOUBLE_EQ(predictor.predict_time(size), expected)
        << "size " << size;
  }
}

TEST(GuardedPredictor, UntrippedGuardedPathIsBitIdenticalToLegacy) {
  const auto& predictor = guarded_predictor();
  for (const auto& [size, expected] : kReduce1Baseline) {
    const auto rec = predictor.predict_guarded(size);
    EXPECT_TRUE(rec.demotions.empty()) << "size " << size;
    EXPECT_TRUE(rec.clamps.empty()) << "size " << size;
    EXPECT_FALSE(rec.extrapolated) << "size " << size;
    // Bit-identical to the legacy path and to the stored baseline.
    EXPECT_EQ(rec.value, predictor.predict_time(size)) << "size " << size;
    EXPECT_DOUBLE_EQ(rec.value, expected) << "size " << size;
    EXPECT_LE(rec.lo, rec.value);
    EXPECT_GE(rec.hi, rec.value);
  }
}

TEST(GuardedPredictor, InHullPredictionsKeepAccuracyAndGradeAB) {
  const auto& predictor = guarded_predictor();
  std::vector<double> sizes;
  for (const auto& pair : kReduce1Baseline) sizes.push_back(pair.first);
  const gpusim::Device dev(gpusim::gtx580());
  const ml::Dataset truth =
      profiling::sweep(profiling::workload_by_name("reduce1"), dev, sizes);
  const std::vector<double> measured = truth.column(kTimeColumn);

  const auto series = predictor.validate(sizes, measured);
  EXPECT_GT(series.explained_variance, 0.9);

  ASSERT_TRUE(series.guard.enabled);
  ASSERT_EQ(series.guard.predictions.size(), sizes.size());
  for (const auto& rec : series.guard.predictions) {
    EXPECT_NE(rec.grade, guard::Grade::kC) << "size " << rec.size;
    EXPECT_FALSE(rec.extrapolated) << "size " << rec.size;
  }
}

TEST(GuardedPredictor, HeadlineFourTimesLargestSizeIsFlaggedAndGradedC) {
  const auto& predictor = guarded_predictor();
  const double largest = 1 << 22;
  const auto rec = predictor.predict_guarded(4.0 * largest);

  EXPECT_TRUE(rec.extrapolated);
  bool size_flagged = false;
  for (const auto& f : rec.flags) {
    if (f.feature == kSizeColumn) {
      size_flagged = true;
      EXPECT_GT(f.distance, 0.5);  // far beyond the margined hull
    }
  }
  EXPECT_TRUE(size_flagged);
  EXPECT_EQ(rec.grade, guard::Grade::kC);
  // Physically impossible counter values were clamped to the caps.
  EXPECT_FALSE(rec.clamps.empty());
  // The guarded value is still finite and positive.
  EXPECT_TRUE(std::isfinite(rec.value));
  EXPECT_GT(rec.value, 0.0);
}

TEST(GuardedPredictor, GuardReportDescribesTheModel) {
  const auto& predictor = guarded_predictor();
  const auto report = predictor.guard_report();
  EXPECT_TRUE(report.enabled);
  ASSERT_FALSE(report.hull.empty());
  bool has_size = false;
  for (const auto& r : report.hull) {
    if (r.name == kSizeColumn) {
      has_size = true;
      EXPECT_EQ(r.lo, 1 << 14);
      EXPECT_EQ(r.hi, 1 << 22);
    }
  }
  EXPECT_TRUE(has_size);
  ASSERT_FALSE(report.counters.empty());
  for (const auto& c : report.counters) {
    EXPECT_EQ(c.chain.size(), 4u) << c.counter;
    EXPECT_EQ(c.chain.front(), c.chosen) << c.counter;
  }
  // No predictions yet: the fit-time skeleton is grade A and not degraded.
  EXPECT_EQ(report.worst(), guard::Grade::kA);
  EXPECT_FALSE(report.degraded());
}

// ---- hardware scaling: the guard only annotates ----

TEST(HardwareScalingGuard, AnnotatesWithoutChangingPredictions) {
  profiling::SweepOptions sweep_opts;
  sweep_opts.machine_characteristics = true;
  const auto sizes = profiling::log2_sizes(1 << 14, 1 << 20, 12, 256);
  const gpusim::Device src_dev(gpusim::gtx580());
  const gpusim::Device tgt_dev(gpusim::kepler_k20m());
  const auto workload = profiling::workload_by_name("reduce1");
  const ml::Dataset source =
      profiling::sweep(workload, src_dev, sizes, sweep_opts);
  const ml::Dataset target =
      profiling::sweep(workload, tgt_dev, sizes, sweep_opts);

  core::HardwareScalingOptions base;
  base.model.forest.n_trees = 80;
  base.guard.enabled = false;
  const auto plain =
      core::HardwareScalingPredictor::predict(source, target, base);

  core::HardwareScalingOptions guarded = base;
  guarded.guard.enabled = true;
  const auto annotated =
      core::HardwareScalingPredictor::predict(source, target, guarded);

  // Same predictions bit for bit; the guard only adds the report.
  ASSERT_EQ(annotated.series.predicted_ms.size(),
            plain.series.predicted_ms.size());
  for (std::size_t i = 0; i < plain.series.predicted_ms.size(); ++i) {
    EXPECT_EQ(annotated.series.predicted_ms[i],
              plain.series.predicted_ms[i]);
  }
  EXPECT_FALSE(plain.series.guard.enabled);
  ASSERT_TRUE(annotated.series.guard.enabled);
  EXPECT_EQ(annotated.series.guard.predictions.size(),
            annotated.series.predicted_ms.size());
}

}  // namespace
}  // namespace bf
