// The fleet-shaped connection layer (serve/net.hpp + serve/conn.hpp):
// pipelined ordered replies, concurrent clients, admission control with
// explicit shedding, per-connection timeouts, mid-request disconnects
// (the SIGPIPE regression), graceful drain, and the stats surface.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "core/predictor.hpp"
#include "gpusim/arch.hpp"
#include "net_test_util.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"
#include "serve/artifact.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace bf {
namespace {

namespace fs = std::filesystem;
using serve::testutil::RunningNetServer;
using serve::testutil::TestClient;

// One small trained predictor shared by every test in this binary; the
// serving layer only reads it and training dominates the runtime.
const core::ProblemScalingPredictor& trained_predictor() {
  static const core::ProblemScalingPredictor p = [] {
    const gpusim::Device dev(gpusim::arch_by_name("gtx580"));
    const ml::Dataset sweep = profiling::sweep(
        profiling::workload_by_name("reduce1"), dev,
        profiling::log2_sizes(1 << 14, 1 << 20, 8, 256));
    core::ProblemScalingOptions pso;
    pso.model.forest.n_trees = 30;
    pso.arch = gpusim::arch_by_name("gtx580");
    return core::ProblemScalingPredictor::build(sweep, pso);
  }();
  return p;
}

/// Spin until pred() holds (condition signalled from the server's I/O
/// or worker threads) or the deadline passes.
bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// A one-shot latch the overload tests use to pin the (single) worker
/// inside a batch while the I/O thread keeps admitting and shedding.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void wait_at_gate() {
    entered.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

class ServeNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bf_net_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    serve::export_model((dir_ / "reduce1.bfmodel").string(), "reduce1",
                        "reduce1", "gtx580", 8, trained_predictor());
    server_options_.model_dir = dir_.string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string socket_path() const { return (dir_ / "bf.sock").string(); }

  serve::NetServerOptions net_options() const {
    serve::NetServerOptions o;
    o.unix_path = socket_path();
    o.workers = 2;
    return o;
  }

  static std::string predict_line(double size, const std::string& id) {
    return "{\"model\":\"reduce1\",\"size\":" + serve::json_number(size) +
           ",\"id\":\"" + id + "\"}";
  }

  serve::ServerOptions server_options_;
  fs::path dir_;
};

TEST_F(ServeNetTest, PipelinedLinesAnsweredInOrderWithoutHalfClose) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  TestClient client = TestClient::connect_unix(socket_path());
  // Three pipelined requests in one write; no shutdown, no EOF.
  ASSERT_TRUE(client.send_raw(predict_line(65536, "a") + "\n" +
                              predict_line(131072, "b") + "\n" +
                              predict_line(262144, "c") + "\n"));
  for (const std::string id : {"a", "b", "c"}) {
    std::string reply;
    ASSERT_TRUE(client.read_line(reply)) << "no reply for id " << id;
    const auto parsed = serve::parse_json(reply);
    EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
    EXPECT_EQ(parsed.find("id")->str, id);
  }
  // The connection is still usable afterwards.
  ASSERT_TRUE(client.send_line(predict_line(65536, "d")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(serve::parse_json(reply).find("id")->str, "d");
  client.close();
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, HalfCloseWithoutTrailingNewlineStillAnswers) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  TestClient client = TestClient::connect_unix(socket_path());
  // The PR-5 protocol: send everything, half-close, read replies. The
  // final line deliberately lacks its newline.
  ASSERT_TRUE(client.send_raw(predict_line(65536, "x") + "\n" +
                              predict_line(131072, "y")));
  client.shutdown_write();
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(serve::parse_json(reply).find("id")->str, "x");
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(serve::parse_json(reply).find("id")->str, "y");
  EXPECT_TRUE(client.eof_within());
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, ConcurrentClientsEachGetOrderedReplies) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  constexpr int kClients = 6;
  constexpr int kRequests = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    // bf-lint: allow(capture-escape) — joined before every capture dies
    threads.emplace_back([&, c] {
      try {
        TestClient client = TestClient::connect_unix(socket_path());
        // Pipeline everything, then read all replies back in order.
        std::string burst;
        for (int k = 0; k < kRequests; ++k) {
          burst += predict_line(65536 * (1 + k % 4),
                                std::to_string(c) + ":" + std::to_string(k));
          burst += '\n';
        }
        if (!client.send_raw(burst)) {
          ++failures;
          return;
        }
        for (int k = 0; k < kRequests; ++k) {
          std::string reply;
          if (!client.read_line(reply)) {
            ++failures;
            return;
          }
          const auto parsed = serve::parse_json(reply);
          const std::string want =
              std::to_string(c) + ":" + std::to_string(k);
          if (!parsed.find("ok")->boolean || parsed.find("id")->str != want) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(running.counters().requests.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(running.counters().replies.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, SlowClientDoesNotStallOthers) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  TestClient slow = TestClient::connect_unix(socket_path());
  const std::string line = predict_line(65536, "slow") + "\n";
  // Dribble the first half of a request, then pause mid-line.
  ASSERT_TRUE(slow.send_raw(line.substr(0, line.size() / 2)));

  // A well-behaved client gets served while the slow one is mid-line.
  TestClient fast = TestClient::connect_unix(socket_path());
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(fast.send_line(predict_line(65536, std::to_string(k))));
    std::string reply;
    ASSERT_TRUE(fast.read_line(reply));
    EXPECT_TRUE(serve::parse_json(reply).find("ok")->boolean);
  }
  const double fast_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  EXPECT_LT(fast_ms, 2000.0);  // nowhere near the slow client's pace

  // The slow client eventually completes and is answered too.
  ASSERT_TRUE(slow.send_raw(line.substr(line.size() / 2)));
  std::string reply;
  ASSERT_TRUE(slow.read_line(reply));
  EXPECT_EQ(serve::parse_json(reply).find("id")->str, "slow");
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, SaturatedQueueShedsNewRequestsImmediately) {
  serve::Server server(server_options_);
  Gate gate;
  serve::NetServerOptions options = net_options();
  options.workers = 1;
  options.max_queue = 2;
  options.before_batch = [&gate] { gate.wait_at_gate(); };
  RunningNetServer running(server, options);

  // Two admitted requests pin the single worker at the gate and fill
  // the queue to max_queue.
  TestClient filler = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(filler.send_raw(predict_line(65536, "f1") + "\n" +
                              predict_line(131072, "f2") + "\n"));
  ASSERT_TRUE(wait_until(
      [&] { return running.counters().requests.load() >= 2; }));
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() >= 1; }));

  // A well-behaved client is shed explicitly, within its timeout, while
  // the queue is saturated — not queued without bound, not blocked.
  TestClient victim = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(victim.send_line(predict_line(65536, "v")));
  std::string reply;
  ASSERT_TRUE(victim.read_line(reply, 2000));
  const auto parsed = serve::parse_json(reply);
  EXPECT_FALSE(parsed.find("ok")->boolean);
  EXPECT_EQ(parsed.find("code")->str, "shed");
  EXPECT_EQ(running.counters().shed.load(), 1u);
  EXPECT_EQ(running.counters().queue_depth.load(), 2u);

  // Release the worker: the filler's admitted requests complete fine.
  gate.release();
  for (const std::string id : {"f1", "f2"}) {
    ASSERT_TRUE(filler.read_line(reply));
    const auto ok = serve::parse_json(reply);
    EXPECT_TRUE(ok.find("ok")->boolean) << reply;
    EXPECT_EQ(ok.find("id")->str, id);
  }
  EXPECT_EQ(running.counters().queue_depth.load(), 0u);
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, MidRequestDisconnectDoesNotKillServerOrOthers) {
  serve::Server server(server_options_);
  Gate gate;
  serve::NetServerOptions options = net_options();
  options.workers = 1;
  options.before_batch = [&gate] { gate.wait_at_gate(); };
  RunningNetServer running(server, options);

  // The victim's request reaches the worker; the peer then vanishes
  // before the reply is written — the classic SIGPIPE kill in the old
  // accept-loop server.
  {
    TestClient vanishing = TestClient::connect_unix(socket_path());
    ASSERT_TRUE(vanishing.send_line(predict_line(65536, "gone")));
    ASSERT_TRUE(wait_until([&] { return gate.entered.load() >= 1; }));
    vanishing.close();
  }
  gate.release();

  // The server survived: a fresh client is served normally.
  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "alive")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
  EXPECT_EQ(parsed.find("id")->str, "alive");
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, IdleConnectionIsTimedOutAndCounted) {
  serve::Server server(server_options_);
  serve::NetServerOptions options = net_options();
  options.timeout_ms = 100;
  RunningNetServer running(server, options);

  TestClient idle = TestClient::connect_unix(socket_path());
  EXPECT_TRUE(idle.eof_within(5000));  // server hangs up on us
  EXPECT_TRUE(wait_until(
      [&] { return running.counters().timeouts.load() >= 1; }));
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, ConnectionLimitRefusesWithExplicitReply) {
  serve::Server server(server_options_);
  serve::NetServerOptions options = net_options();
  options.max_conns = 1;
  RunningNetServer running(server, options);

  TestClient first = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(first.send_line(predict_line(65536, "one")));
  std::string reply;
  ASSERT_TRUE(first.read_line(reply));
  EXPECT_TRUE(serve::parse_json(reply).find("ok")->boolean);

  TestClient refused = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(refused.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_FALSE(parsed.find("ok")->boolean);
  EXPECT_EQ(parsed.find("code")->str, "shed");
  EXPECT_TRUE(refused.eof_within());
  EXPECT_EQ(running.counters().overloaded_conns.load(), 1u);

  // The established client is unaffected.
  ASSERT_TRUE(first.send_line(predict_line(65536, "two")));
  ASSERT_TRUE(first.read_line(reply));
  EXPECT_TRUE(serve::parse_json(reply).find("ok")->boolean);
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, OversizedRequestLineGetsMalformedReplyAndClose) {
  serve::Server server(server_options_);
  serve::NetServerOptions options = net_options();
  options.max_line = 64;
  RunningNetServer running(server, options);

  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_raw(std::string(300, 'x')));  // no newline needed
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_FALSE(parsed.find("ok")->boolean);
  EXPECT_EQ(parsed.find("code")->str, "malformed");
  EXPECT_TRUE(client.eof_within());
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, DrainFinishesInFlightRequestsAndExitsZero) {
  serve::Server server(server_options_);
  Gate gate;
  serve::NetServerOptions options = net_options();
  options.workers = 1;
  options.before_batch = [&gate] { gate.wait_at_gate(); };
  RunningNetServer running(server, options);

  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "inflight")));
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() >= 1; }));

  // Stop while the request is mid-batch: the drain must deliver its
  // reply, close the connection, and run() must return 0.
  running.net().request_stop();
  gate.release();
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
  EXPECT_EQ(parsed.find("id")->str, "inflight");
  EXPECT_TRUE(client.eof_within());
  EXPECT_EQ(running.stop(), 0);

  // New connections were refused during the drain: the listener socket
  // is gone from the filesystem.
  EXPECT_FALSE(fs::exists(socket_path()));
}

TEST_F(ServeNetTest, DrainDeadlineAnswersStuckRequestsWithTimeout) {
  serve::Server server(server_options_);
  Gate gate;
  serve::NetServerOptions options = net_options();
  options.workers = 1;
  options.drain_ms = 200;
  options.before_batch = [&gate] { gate.wait_at_gate(); };
  RunningNetServer running(server, options);

  TestClient client = TestClient::connect_unix(socket_path());
  // Two requests: the first pins the worker at the gate, the second
  // stays queued and can never be answered before the drain deadline.
  ASSERT_TRUE(client.send_raw(predict_line(65536, "stuck1") + "\n" +
                              predict_line(131072, "stuck2") + "\n"));
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() >= 1; }));
  running.net().request_stop();

  // The drain deadline passes with the worker still stuck: the queued
  // request is answered with an explicit timeout error. (The reply for
  // the in-worker batch is lost — its connection is closed — which is
  // exactly what the deadline promises.)
  std::string reply;
  const bool got_reply = client.read_line(reply, 2000);
  if (got_reply) {
    const auto parsed = serve::parse_json(reply);
    EXPECT_FALSE(parsed.find("ok")->boolean);
    EXPECT_EQ(parsed.find("code")->str, "timeout");
  }
  EXPECT_TRUE(client.eof_within());
  gate.release();  // let the worker finish so stop() can join
  EXPECT_EQ(running.stop(), 0);
  EXPECT_GE(running.counters().timeouts.load(), 1u);
}

TEST_F(ServeNetTest, TcpListenerServesAndReportsEphemeralPort) {
  serve::Server server(server_options_);
  serve::NetServerOptions options;  // TCP only, no unix path
  options.tcp_port = 0;
  options.workers = 2;
  RunningNetServer running(server, options);
  ASSERT_GT(running.net().tcp_port(), 0);

  TestClient client =
      TestClient::connect_tcp("127.0.0.1", running.net().tcp_port());
  ASSERT_TRUE(client.send_line(predict_line(65536, "tcp")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
  EXPECT_EQ(parsed.find("id")->str, "tcp");
  client.close();
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, StatsReplyCarriesNetCounters) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "warm")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  ASSERT_TRUE(client.send_line("{\"cmd\":\"stats\"}"));
  ASSERT_TRUE(client.read_line(reply));
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean);
  const serve::JsonValue* net = parsed.find("net");
  ASSERT_NE(net, nullptr) << reply;
  EXPECT_EQ(net->find("accepted")->number, 1.0);
  EXPECT_EQ(net->find("active_conns")->number, 1.0);
  EXPECT_GE(net->find("requests")->number, 2.0);
  EXPECT_EQ(net->find("shed")->number, 0.0);
  EXPECT_NE(parsed.find("coalesced"), nullptr);
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, ReloadVerbOverSocketPromotesWithoutDroppingPeers) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  // An established client observes generation 1 …
  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "before")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(serve::parse_json(reply).find("generation")->number, 1.0);

  // … while a second connection rewrites the bundle and drives the
  // admin reload verb over the wire.
  serve::export_model((dir_ / "reduce1.bfmodel").string(), "reduce1",
                      "reduce1", "gtx580", 9, trained_predictor());
  TestClient admin = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(admin.send_line(
      R"({"cmd":"reload","model":"reduce1","id":"swap"})"));
  ASSERT_TRUE(admin.read_line(reply));
  const auto swapped = serve::parse_json(reply);
  EXPECT_TRUE(swapped.find("ok")->boolean) << reply;
  EXPECT_EQ(swapped.find("id")->str, "swap");
  EXPECT_EQ(swapped.find("status")->str, "promoted");
  EXPECT_EQ(swapped.find("generation")->number, 2.0);

  // The first connection survived the swap and now serves generation 2.
  ASSERT_TRUE(client.send_line(predict_line(65536, "after")));
  ASSERT_TRUE(client.read_line(reply));
  const auto after = serve::parse_json(reply);
  EXPECT_TRUE(after.find("ok")->boolean) << reply;
  EXPECT_EQ(after.find("generation")->number, 2.0);
  EXPECT_EQ(running.stop(), 0);
}

// ---- fault points (chaos drives these deterministically) ----

TEST_F(ServeNetTest, NetDisconnectFaultDropsOnlyThatConnection) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  const fault::ScopedFaults faults("serve.net.disconnect:1.0:1");
  TestClient victim = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(victim.send_line(predict_line(65536, "doomed")));
  EXPECT_TRUE(victim.eof_within());  // dropped without a reply
  EXPECT_TRUE(wait_until(
      [&] { return running.counters().disconnects.load() >= 1; }));

  // The fault budget is spent; other connections are untouched.
  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "fine")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_TRUE(serve::parse_json(reply).find("ok")->boolean) << reply;
  EXPECT_GT(fault::stats(fault::points::kServeNetDisconnect).fired, 0u);
  EXPECT_EQ(running.stop(), 0);
}

TEST_F(ServeNetTest, NetStallFaultDelaysButStillDelivers) {
  serve::Server server(server_options_);
  RunningNetServer running(server, net_options());

  const fault::ScopedFaults faults("serve.net.stall:1.0:2");
  TestClient client = TestClient::connect_unix(socket_path());
  ASSERT_TRUE(client.send_line(predict_line(65536, "stalled")));
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));  // later rounds deliver it
  const auto parsed = serve::parse_json(reply);
  EXPECT_TRUE(parsed.find("ok")->boolean) << reply;
  EXPECT_EQ(parsed.find("id")->str, "stalled");
  EXPECT_GT(fault::stats(fault::points::kServeNetStall).fired, 0u);
  EXPECT_EQ(running.stop(), 0);
}

}  // namespace
}  // namespace bf
