#!/bin/sh
# End-to-end serving test: train + export a bundle with bf_analyze, then
# drive bf_serve over NDJSON covering a cache hit, a miss with LRU
# eviction, a corrupt bundle and an unknown model. Run by ctest as
#   serve_e2e.sh <bf_analyze> <bf_serve>
set -eu

BF_ANALYZE=$1
BF_SERVE=$2
WORK=$(mktemp -d "${TMPDIR:-/tmp}/bf_serve_e2e.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "serve_e2e: FAIL: $1" >&2
  exit 1
}

# --- train once, export three bundles (two good, one corrupted) ---
"$BF_ANALYZE" --workload reduce1 --runs 10 --trees 40 \
    --min 16384 --max 1048576 \
    --export-model "$WORK/reduce1.bfmodel" >/dev/null
cp "$WORK/reduce1.bfmodel" "$WORK/second.bfmodel"
cp "$WORK/reduce1.bfmodel" "$WORK/broken.bfmodel"
# Flip one payload byte near the end of the copy.
SIZE=$(wc -c < "$WORK/broken.bfmodel")
printf 'X' | dd of="$WORK/broken.bfmodel" bs=1 seek=$((SIZE - 20)) \
    conv=notrunc 2>/dev/null

# --- drive the server: hit, miss/evict (cache=1), corrupt, unknown ---
cat > "$WORK/requests" <<'EOF'
{"model":"reduce1","size":65536,"id":1}
{"model":"reduce1","size":131072,"id":2}
{"model":"second","size":65536,"id":3}
{"model":"reduce1","size":65536,"id":4}
{"model":"broken","size":65536,"id":5}
{"model":"ghost","size":65536,"id":6}
{"cmd":"stats"}
EOF
"$BF_SERVE" --model-dir "$WORK" --cache 1 < "$WORK/requests" \
    > "$WORK/replies" || fail "bf_serve exited non-zero"

[ "$(wc -l < "$WORK/replies")" -eq 7 ] || fail "expected 7 reply lines"

line() { sed -n "${1}p" "$WORK/replies"; }

# Requests 1-4: good predictions. Request 2 is a cache hit; request 3
# (cache capacity 1) evicts reduce1; request 4 reloads it.
for n in 1 2 3 4; do
  case "$(line $n)" in
    *'"ok":true'*'"predicted_ms":'*'"grade":"'*) ;;
    *) fail "reply $n is not a good prediction: $(line $n)" ;;
  esac
done
# Identical queries before and after eviction must predict identically.
P1=$(line 1 | sed 's/.*"predicted_ms":\([^,]*\),.*/\1/')
P4=$(line 4 | sed 's/.*"predicted_ms":\([^,]*\),.*/\1/')
[ "$P1" = "$P4" ] || fail "prediction changed across eviction: $P1 vs $P4"

# Request 5: corrupt bundle -> checksum error reply + quarantine.
case "$(line 5)" in
  *'"ok":false'*checksum*) ;;
  *) fail "corrupt bundle was not rejected: $(line 5)" ;;
esac
[ -f "$WORK/broken.bfmodel.quarantined" ] || fail "no quarantine file"
[ ! -f "$WORK/broken.bfmodel" ] || fail "corrupt bundle still in place"

# Request 6: unknown model -> error reply, server keeps going.
case "$(line 6)" in
  *'"ok":false'*) ;;
  *) fail "unknown model did not error: $(line 6)" ;;
esac

# Stats: 5 loads (reduce1, second, reduce1 again after the eviction,
# broken, ghost), 1 hit (request 2), 2 eviction cycles with --cache 1,
# 2 failures, and the failed loads did not evict the good bundle.
case "$(line 7)" in
  *'"hits":1'*'"loads":5'*'"evictions":2'*'"failures":2'*'"resident":["reduce1"]'*) ;;
  *) fail "unexpected stats: $(line 7)" ;;
esac

# --- batch mode: same protocol, per-model grouping on the pool ---
printf '%s\n' \
  '{"model":"reduce1","size":65536,"id":"b1"}' \
  '{"model":"second","size":65536,"id":"b2"}' \
  '{"model":"reduce1","size":131072,"id":"b3"}' \
  | "$BF_SERVE" --model-dir "$WORK" --cache 4 --threads 4 --batch \
  > "$WORK/batch_replies" || fail "batch mode exited non-zero"
[ "$(wc -l < "$WORK/batch_replies")" -eq 3 ] || fail "batch reply count"
grep -c '"ok":true' "$WORK/batch_replies" | grep -qx 3 \
    || fail "batch replies not all ok"
B1=$(sed -n 1p "$WORK/batch_replies" | sed 's/.*"predicted_ms":\([^,]*\),.*/\1/')
[ "$B1" = "$P1" ] || fail "batch prediction differs from streamed: $B1 vs $P1"

# --- bit identity through the CLI: --from-model reprints the same
# numbers the exporting analysis would produce for the same queries ---
"$BF_SERVE" --version >/dev/null || fail "--version failed"
"$BF_ANALYZE" --from-model "$WORK/reduce1.bfmodel" --predict 65536 \
    > "$WORK/from_model" || fail "--from-model failed"
grep -q "trained by blackforest" "$WORK/from_model" \
    || fail "--from-model lost provenance"

echo "serve_e2e: PASS"
