// Fixture: seeded capture-escape violations — by-reference lambda
// captures handed to ThreadPool::submit and to a std::thread, plus a
// by-value lambda that must NOT fire.
#include <thread>

struct Pool {
  template <typename F>
  void submit(F&& f);
};

void fan_out(Pool& pool) {
  int local = 0;
  pool.submit([&local] { local += 1; });  // seeded: capture-escape
  pool.submit([local] { (void)local; });  // by value: clean
  std::thread worker([&] { local += 2; });  // seeded: capture-escape
  worker.join();
}
