// Fixture: one seeded violation for each of the classic banned-pattern
// rules that fire on simple tokens. Lines matter to the parity test in
// tests/sa_test.cpp — update the expected table there when editing.
#include <cstdlib>

int* make_leak() {
  int* p = new int(7);  // seeded: raw-new
  return p;
}

void free_leak(int* p) {
  delete p;  // seeded: raw-delete
}

int noise() {
  return rand();  // seeded: no-rand
}

double shrink(double x) {
  return x * 0.5f;  // seeded: float-literal
}

double parse(const char* s) {
  return atof(s);  // seeded: unchecked-parse
}
