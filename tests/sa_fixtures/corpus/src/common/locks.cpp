// Fixture: seeded lock-order violation — mu_a/mu_b acquired in both
// orders in one translation unit (the classic ABBA deadlock). The
// mutexes themselves are exempt from mutable-global (sync primitives).
#include <mutex>

std::mutex mu_a;
std::mutex mu_b;
int shared_value = 0;  // bf-lint: allow(mutable-global)

void forward() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
  ++shared_value;
}

void backward() {
  std::lock_guard<std::mutex> lb(mu_b);
  std::lock_guard<std::mutex> la(mu_a);  // seeded: lock-order
  --shared_value;
}
