// Fixture: lexer stress — every construct here is CLEAN. A
// line-oriented or state-machine-corrupted scanner reports false
// positives in this file; the token-based engine must stay silent.
#include <string>

// Raw string literals: embedded quotes, banned words and comment-like
// text are all literal data, not code.
const std::string kRawBanned = R"(new delete rand() atof("x") 0.5f)";
const std::string kRawQuote = R"delim(she said "new int" loudly)delim";
const std::string kRawMultiline = R"(line one
rand() on line two of the literal
still inside: /* not a comment */ atof)";

// A block-comment opener inside a plain string must not eat the rest of
// the file (the 0.5f after it is inside the next string, also fine).
const std::string kFakeComment = "/* still a string: new int; 0.5f";
const std::string kFakeClose = "*/ delete p; rand();";

// Adjacent string literals concatenate; each piece lexes separately.
const std::string kAdjacent =
    "first piece with new "
    "second piece with rand() "
    "third with atof(\"7\")";

// Char-literal escapes: '\'' and '\\' must not desynchronise the lexer
// into treating the following tokens as literal content (or vice
// versa).
const char kQuote = '\'';
const char kBackslash = '\\';
const char kNul = '\0';

// The continuation makes the next physical line part of this comment: \
new int[3]; rand(); atof("99");  0.5f;

int use_everything() {
  return static_cast<int>(kRawBanned.size() + kAdjacent.size()) +
         (kQuote == '\'' ? 1 : 0) + (kBackslash == '\\' ? 1 : 0) +
         (kNul == '\0' ? 1 : 0) +
         static_cast<int>(kFakeComment.size() + kFakeClose.size() +
                          kRawQuote.size() + kRawMultiline.size());
}
