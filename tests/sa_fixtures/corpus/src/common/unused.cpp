// Fixture: seeded unused-suppression — the allow() below silences
// nothing on its line.
int clean_function() {
  return 1;  // bf-lint: allow(raw-new)  (seeded: unused-suppression)
}
