// Fixture: seeded duplicate-include — the same resolved header twice.
#include "common/cycle_a.hpp"
#include "common/cycle_a.hpp"

int dup() { return cycle_a(); }
