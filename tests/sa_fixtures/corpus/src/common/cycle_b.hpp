// Fixture: the other half of the seeded include cycle.
#pragma once
#include "common/cycle_a.hpp"
inline int cycle_b() { return 2; }
