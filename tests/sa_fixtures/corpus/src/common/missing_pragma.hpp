// Fixture: seeded pragma-once violation — this header deliberately has
// no #pragma once.
inline int forty_two() { return 42; }
