// Fixture: seeded mutable-global violation, beside the shapes that must
// stay clean (const, constexpr, atomics, mutexes, function statics).
#include <atomic>
#include <mutex>
#include <string>

int g_counter = 0;  // seeded: mutable-global

const int kLimit = 8;                  // clean: const
constexpr double kScale = 1.5;         // clean: constexpr
std::atomic<int> g_hits{0};            // clean: atomic
std::mutex g_mu;                       // clean: sync primitive
static const std::string kName = "x";  // clean: const

int bump() {
  static int calls = 0;  // clean: function-local static
  return ++calls + g_counter;
}
