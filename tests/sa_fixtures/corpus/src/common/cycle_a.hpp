// Fixture: half of a seeded include cycle (a -> b -> a).
#pragma once
#include "common/cycle_b.hpp"
inline int cycle_a() { return 1; }
