// Fixture: seeded guarded-predict violations on the power response's
// scalar entry points — unguarded predict_time/predict_power calls in
// the power layer must route through predict_guarded instead.
struct Psp {
  double predict_time(double size) const;
};
struct PowerModel {
  double predict_power(double size) const;
  Psp psp_;
};

double watts(const PowerModel* m, double size) {
  const double direct = m->predict_power(size);  // seeded: guarded-predict
  return direct;
}

double raw(const Psp& p, double size) {
  return p.predict_time(size);  // seeded: guarded-predict
}

double audited(const Psp& p, double size) {
  return p.predict_time(size);  // bf-lint: allow(guarded-predict)
}
