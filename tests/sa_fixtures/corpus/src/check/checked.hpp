// Fixture: a clean header in the check layer, used as the target of the
// seeded layer-dag violation in src/ml/layered.hpp.
#pragma once
inline bool checked() { return true; }
