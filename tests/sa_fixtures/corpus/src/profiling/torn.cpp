// Fixture: seeded atomic-write violation — a bare ofstream in the
// repository layer.
#include <fstream>

void persist(const char* path) {
  std::ofstream os(path);  // seeded: atomic-write
  os << "torn";
}
