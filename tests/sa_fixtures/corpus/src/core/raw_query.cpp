// Fixture: seeded guarded-predict violations — a per-row model query
// and a direct forest prediction inside the core layer, both of which
// must go through the guard layer's supervised entry points.
struct Model {
  double predict_row(const double* x, int n) const;
  struct Forest {
    double predict(const double* x) const;
  };
  Forest forest_;
};

double query(const Model& m, const double* x, int n) {
  const double a = m.predict_row(x, n);  // seeded: guarded-predict
  const double b = m.forest_.predict(x);  // seeded: guarded-predict
  return a + b;
}
