// Fixture: seeded registry-swap violations — raw model pointers held
// across a batch boundary in the serving layer. A hot reload promotes a
// new generation and drops the old one when its last shared_ptr pin
// goes away; a raw pointer held meanwhile dangles.
struct ModelBundle {
  double predict(double size) const;
};

double serve_batch(ModelBundle* staged, double size) {  // seeded: registry-swap
  const ModelBundle* pinned = staged;  // seeded: registry-swap
  return pinned->predict(size);
}
