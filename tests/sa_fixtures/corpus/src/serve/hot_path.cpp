// Fixture: seeded flat-predict violations — a pointer-tree per-row walk
// inside the serving layer, which must route predictions through the
// frozen flat inference engine instead.
struct Tree {
  double predict_row(const double* x) const;  // seeded: flat-predict
};

double serve_one(const Tree& t, const double* x) {
  return t.predict_row(x);  // seeded: flat-predict
}

double audited_exit(const Tree& t, const double* x) {
  return t.predict_row(x);  // bf-lint: allow(flat-predict)
}
