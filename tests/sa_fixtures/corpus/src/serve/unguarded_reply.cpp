// Fixture: seeded guarded-predict violation in the serving layer — a
// reply computed from the unguarded scalar entry point carries no
// grade, interval or physical-cap fields.
struct Bundle {
  double predict_time(double size) const;
};

double reply(const Bundle& b, double size) {
  return b.predict_time(size);  // seeded: guarded-predict
}
