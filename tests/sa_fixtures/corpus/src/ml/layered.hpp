// Fixture: seeded layer-dag violation — ml may not include from check
// (check sits above ml in the layer DAG).
#pragma once
#include "check/checked.hpp"
inline bool layered() { return checked(); }
