// Fixture: seeded artifact-version violation — a serialized-struct
// reader that parses fields without consulting the format version.
#include <istream>

struct Blob {
  int field = 0;
};

Blob load(std::istream& is) {  // seeded: artifact-version
  Blob b;
  is >> b.field;
  return b;
}
