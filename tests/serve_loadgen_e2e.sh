#!/bin/sh
# End-to-end socket serving under load: train + export a bundle, start
# bf_serve on a Unix socket, drive it with bf_loadgen (concurrent
# connections plus a deliberately slow client and a mid-request
# disconnector), validate BENCH_serve.json, then SIGTERM the server and
# require a graceful drain (exit 0). Run by ctest as
#   serve_loadgen_e2e.sh <bf_analyze> <bf_serve> <bf_loadgen>
set -eu

BF_ANALYZE=$1
BF_SERVE=$2
BF_LOADGEN=$3
WORK=$(mktemp -d "${TMPDIR:-/tmp}/bf_loadgen_e2e.XXXXXX")
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_loadgen_e2e: FAIL: $1" >&2
  [ -f "$WORK/serve.log" ] && cat "$WORK/serve.log" >&2
  exit 1
}

# --- train once, export a bundle ---
"$BF_ANALYZE" --workload reduce1 --runs 8 --trees 30 \
    --min 16384 --max 1048576 \
    --export-model "$WORK/reduce1.bfmodel" >/dev/null

# --- start the server on a Unix socket ---
SOCK="$WORK/bf.sock"
"$BF_SERVE" --model-dir "$WORK" --socket "$SOCK" \
    --max-queue 64 --timeout-ms 10000 --drain-ms 3000 \
    2>"$WORK/serve.log" &
SERVE_PID=$!

# Wait for the listener (the socket file appears once bound).
tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "server never bound $SOCK"
  kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done

# --- drive it: measured traffic + slow + disconnecting chaos clients ---
BENCH="$WORK/BENCH_serve.json"
"$BF_LOADGEN" --socket "$SOCK" --model reduce1 \
    --requests 200 --conns 4 --qps 400 \
    --slow 1 --disconnect 1 --seed 7 \
    --out "$BENCH" >/dev/null \
    || fail "bf_loadgen reported no successful requests"

[ -f "$BENCH" ] || fail "BENCH_serve.json was not written"

# --- structural checks on the report ---
check() {
  grep -q "$1" "$BENCH" || fail "BENCH_serve.json lacks $1 ($(cat "$BENCH"))"
}
check '"bench":"serve"'
check '"ok":200'
check '"no_reply":0'
check '"disconnects_done":1'
check '"slow_ok":1'
grep -q '"qps_achieved":0[,.}]' "$BENCH" && fail "qps_achieved is zero"
grep -q '"p50":0[,}]' "$BENCH" && fail "p50 latency is zero"

# The server must still be healthy after the chaos clients.
kill -0 "$SERVE_PID" 2>/dev/null || fail "server died under load"

# --- graceful drain: SIGTERM must finish in-flight work and exit 0 ---
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "drain exited $rc, want 0"
SERVE_PID=""
[ -S "$SOCK" ] && fail "socket file survived the drain"

echo "serve_loadgen_e2e: OK"
