// Tests for the CPU substrate of the §7 heterogeneous extension.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/model.hpp"
#include "cpusim/cpu_workloads.hpp"

namespace bf::cpusim {
namespace {

TEST(CpuArch, SpecsAndCharacteristics) {
  const CpuSpec xeon = xeon_e5_2620();
  EXPECT_EQ(xeon.cores, 6);
  EXPECT_EQ(xeon.simd_width, 8);
  const CpuSpec i7 = core_i7_4770k();
  EXPECT_GT(i7.clock_ghz, xeon.clock_ghz);
  const auto chars = cpu_machine_characteristics(xeon);
  ASSERT_EQ(chars.size(), 5u);
  EXPECT_EQ(chars[0].first, "cores");
  EXPECT_DOUBLE_EQ(chars[0].second, 6.0);
}

TEST(CpuEngine, TriadCountersMatchClosedForm) {
  const CpuDevice dev(xeon_e5_2620());
  const std::int64_t n = 1 << 20;
  const CpuTriadKernel kernel(n, dev.spec());
  CpuRunOptions opts;
  opts.max_sampled_chunks = 0;  // exact
  const auto r = dev.run(kernel, opts);
  // Per 16-float line: 2 loads; n/16 lines.
  EXPECT_NEAR(r.counters.at("l1d_loads"), 2.0 * n / 16.0, 1.0);
  // Streaming working set >> LLC: every line misses to DRAM.
  EXPECT_GT(r.counters.at("llc_misses"),
            0.9 * r.counters.at("l1d_load_misses"));
  // DRAM traffic ~ 3 arrays * 4 B * n (2 read + 1 write-back stream).
  const double dram = r.counters.at("dram_read_bytes") +
                      r.counters.at("dram_write_bytes");
  EXPECT_NEAR(dram, 3.0 * 4.0 * static_cast<double>(n),
              0.25 * 3.0 * 4.0 * static_cast<double>(n));
  EXPECT_TRUE(r.bandwidth_bound);
}

TEST(CpuEngine, MatMulComputeBoundAndCacheFriendly) {
  const CpuDevice dev(xeon_e5_2620());
  const CpuMatMulKernel kernel(256, dev.spec());
  const auto r = dev.run(kernel);
  // Blocked matmul reuses B/C lines: L1 miss ratio well under 50%.
  EXPECT_LT(r.counters.at("l1d_load_misses"),
            0.5 * r.counters.at("l1d_loads"));
  EXPECT_GT(r.counters.at("simd_ops"), 0.0);
  EXPECT_GT(r.counters.at("ipc"), 0.1);
}

TEST(CpuEngine, SamplingApproximatesFullRun) {
  const CpuDevice dev(xeon_e5_2620());
  const CpuMatMulKernel kernel(192, dev.spec());
  CpuRunOptions full;
  full.max_sampled_chunks = 0;
  CpuRunOptions sampled;
  sampled.max_sampled_chunks = 48;
  const auto rf = dev.run(kernel, full);
  const auto rs = dev.run(kernel, sampled);
  EXPECT_LT(rs.chunks_simulated, rf.chunks_simulated);
  EXPECT_NEAR(rs.counters.at("instructions"),
              rf.counters.at("instructions"),
              0.05 * rf.counters.at("instructions"));
  EXPECT_NEAR(rs.time_ms, rf.time_ms, 0.3 * rf.time_ms);
}

TEST(CpuEngine, NwIsBranchyAndScalar) {
  const CpuDevice dev(xeon_e5_2620());
  const CpuNwKernel kernel(512);
  const auto r = dev.run(kernel);
  EXPECT_GT(r.counters.at("branch_misses"), 0.0);
  EXPECT_DOUBLE_EQ(r.counters.at("simd_ops"), 0.0);
  EXPECT_GT(r.counters.at("branches"),
            5.0 * r.counters.at("branch_misses"));
}

TEST(CpuEngine, TimeScalesWithProblem) {
  const CpuDevice dev(xeon_e5_2620());
  const auto t1 = dev.run(CpuMatMulKernel(128, dev.spec())).time_ms;
  const auto t2 = dev.run(CpuMatMulKernel(512, dev.spec())).time_ms;
  EXPECT_GT(t2, 10.0 * t1);  // O(n^3)
}

TEST(CpuEngine, FasterChipIsFaster) {
  // Same silicon generation, higher clock: i7 wins on a compute-bound
  // kernel despite fewer cores (4*3.5 vs 6*2.0 GHz-cores).
  const CpuDevice xeon(xeon_e5_2620());
  const CpuDevice i7(core_i7_4770k());
  const auto tx = xeon.run(CpuMatMulKernel(256, xeon.spec())).time_ms;
  const auto ti = i7.run(CpuMatMulKernel(256, i7.spec())).time_ms;
  EXPECT_LT(ti, tx);
}

TEST(CpuSweep, ProducesBlackForestReadyDataset) {
  const CpuDevice dev(xeon_e5_2620());
  const auto ds =
      cpu_sweep(cpu_matmul_workload(), dev, {64, 128, 192, 256});
  EXPECT_EQ(ds.num_rows(), 4u);
  EXPECT_TRUE(ds.has_column("size"));
  EXPECT_TRUE(ds.has_column("time_ms"));
  EXPECT_TRUE(ds.has_column("llc_misses"));
  EXPECT_TRUE(ds.has_column("ipc"));
  // Time grows with size.
  const auto& t = ds.column("time_ms");
  EXPECT_LT(t.front(), t.back());
}

TEST(CpuSweep, MachineCharacteristicsInjected) {
  const CpuDevice dev(core_i7_4770k());
  CpuSweepOptions opt;
  opt.machine_characteristics = true;
  const auto ds = cpu_sweep(cpu_triad_workload(), dev,
                            {1 << 16, 1 << 18}, opt);
  EXPECT_TRUE(ds.has_column("cores"));
  EXPECT_DOUBLE_EQ(ds.at(0, "cores"), 4.0);
}

TEST(CpuPipeline, BlackForestCoreRunsUnchangedOnCpuData) {
  // The unified-modelling claim: the same BlackForestModel consumes CPU
  // counter datasets with no changes.
  const CpuDevice dev(xeon_e5_2620());
  std::vector<double> sizes;
  for (int n = 64; n <= 512; n += 32) sizes.push_back(n);
  const auto ds = cpu_sweep(cpu_matmul_workload(), dev, sizes);

  core::ModelOptions opt;
  opt.forest.n_trees = 150;
  const auto model = core::BlackForestModel::fit(ds, opt);
  EXPECT_GT(model.pct_var_explained(), 60.0);
  EXPECT_FALSE(model.top_variables(3).empty());
}

TEST(CpuEngine, DegenerateKernelRejected) {
  class EmptyKernel final : public CpuKernel {
   public:
    std::string name() const override { return "empty"; }
    std::int64_t num_chunks() const override { return 0; }
    void emit_chunk(std::int64_t, CpuTraceSink&) const override {}
  };
  const CpuDevice dev(xeon_e5_2620());
  EXPECT_THROW(dev.run(EmptyKernel{}), Error);
}

}  // namespace
}  // namespace bf::cpusim
