// Tests for the kernel library: reference implementations, trace
// structure, and the bottleneck signatures each kernel is built to show.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/engine.hpp"
#include "kernels/matmul.hpp"
#include "kernels/misc.hpp"
#include "kernels/nw.hpp"
#include "kernels/reduce.hpp"

namespace bf::kernels {
namespace {

using gpusim::Device;
using gpusim::Event;
using gpusim::gtx580;
using gpusim::kepler_k20m;

// ---- functional references ----

TEST(Reference, ReduceSum) {
  EXPECT_DOUBLE_EQ(reduce_reference({1, 2, 3, 4.5}), 10.5);
  EXPECT_DOUBLE_EQ(reduce_reference({}), 0.0);
}

TEST(Reference, MatmulSmallKnown) {
  // 2x2 blocked up to n=2 is just a plain matmul.
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  const auto c = matmul_reference(a, b, 2);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Reference, MatmulIdentity) {
  Rng rng(1);
  const int n = 8;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> eye(a.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    eye[static_cast<std::size_t>(i) * n + i] = 1.0;
  }
  for (auto& v : a) v = rng.normal();
  const auto c = matmul_reference(a, eye, n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(c[i], a[i], 1e-12);
  }
}

TEST(Reference, NwRecurrenceAgainstHandComputation) {
  // 2x2 problem, zero substitution scores, penalty 1: every interior
  // cell comes from the gap chain.
  const int n = 2;
  const std::vector<int> ref(static_cast<std::size_t>((n + 1) * (n + 1)), 0);
  const auto m = nw_reference(ref, n, 1);
  // Borders: -1, -2 along both axes.
  EXPECT_EQ(m[1], -1);
  EXPECT_EQ(m[2], -2);
  EXPECT_EQ(m[3], -1);  // (1,0)
  // (1,1): max(0+0, -1-1, -1-1) = 0.
  EXPECT_EQ(m[4], 0);
  // (1,2): max(-1+0, 0-1, -2-1) = -1.
  EXPECT_EQ(m[5], -1);
  // (2,2): max(0+0, -1-1, -1-1) = 0.
  EXPECT_EQ(m[8], 0);
}

TEST(Reference, NwMatchRewardPath) {
  // Diagonal of matches (+2 each) dominates: score grows along diagonal.
  const int n = 3;
  std::vector<int> ref(static_cast<std::size_t>((n + 1) * (n + 1)), -1);
  for (int i = 1; i <= n; ++i) {
    ref[static_cast<std::size_t>(i) * (n + 1) + i] = 2;
  }
  const auto m = nw_reference(ref, n, 1);
  EXPECT_EQ(m.back(), 6);  // three matches
}

// ---- reduction ladder ----

TEST(Reduce, ShuffleVariantAvoidsSharedTree) {
  // reduce7 keeps partial sums in registers: compared with reduce6 it
  // needs almost no shared traffic and fewer barriers, and must be at
  // least as fast.
  const Device dev(gtx580());
  const auto r6 = simulate_reduction(dev, 6, 1 << 20);
  const auto r7 = simulate_reduction(dev, 7, 1 << 20);
  EXPECT_LT(r7.counters.get(Event::kSharedLoad),
            0.3 * r6.counters.get(Event::kSharedLoad));
  EXPECT_LT(r7.time_ms, r6.time_ms * 1.05);
  EXPECT_DOUBLE_EQ(r7.counters.get(Event::kSharedBankConflict), 0.0);
}

TEST(Reduce, LaunchGeometryPerVariant) {
  const ReduceKernel r1(1, 1 << 16, 256);
  EXPECT_EQ(r1.geometry().num_blocks(), (1 << 16) / 256);
  const ReduceKernel r3(3, 1 << 16, 256);
  EXPECT_EQ(r3.geometry().num_blocks(), (1 << 16) / 512);
  const ReduceKernel r6(6, 1 << 20, 256);
  EXPECT_EQ(r6.geometry().num_blocks(), 64);  // SDK cap
  EXPECT_THROW(ReduceKernel(8, 1024, 256), Error);
  EXPECT_THROW(ReduceKernel(1, 1024, 100), Error);  // not a power of two
}

TEST(Reduce, MultiLaunchTerminates) {
  const Device dev(gtx580());
  const auto agg = simulate_reduction(dev, 2, 1 << 18);
  // 1<<18 -> 1024 partials -> 4 -> 1: three launches.
  EXPECT_EQ(agg.launches, 3);
  EXPECT_GT(agg.time_ms, 0.0);
}

TEST(Reduce, Reduce1HasBankConflictsReduce2DoesNot) {
  const Device dev(gtx580());
  const auto r1 = simulate_reduction(dev, 1, 1 << 18);
  const auto r2 = simulate_reduction(dev, 2, 1 << 18);
  EXPECT_GT(r1.counters.get(Event::kSharedBankConflict), 1000.0);
  EXPECT_DOUBLE_EQ(r2.counters.get(Event::kSharedBankConflict), 0.0);
}

TEST(Reduce, Reduce0DivergesReduce1DoesNotWithinActiveWarps) {
  const Device dev(gtx580());
  const auto r0 = simulate_reduction(dev, 0, 1 << 18);
  const auto r1 = simulate_reduction(dev, 1, 1 << 18);
  EXPECT_GT(r0.counters.get(Event::kDivergentBranch),
            2.0 * r1.counters.get(Event::kDivergentBranch));
}

TEST(Reduce, OptimisationLadderMonotoneTime) {
  // Each step of the CUDA SDK ladder must not be slower than the last
  // (the educational point of the benchmark).
  const Device dev(gtx580());
  double prev = 1e300;
  for (const int variant : {0, 1, 2, 3, 6}) {
    const auto agg = simulate_reduction(dev, variant, 1 << 20);
    EXPECT_LT(agg.time_ms, prev * 1.05)
        << "reduce" << variant << " regressed over the previous variant";
    prev = agg.time_ms;
  }
}

TEST(Reduce, WorkScalesWithN) {
  const Device dev(gtx580());
  const auto small = simulate_reduction(dev, 2, 1 << 16);
  const auto large = simulate_reduction(dev, 2, 1 << 20);
  const double ratio = large.counters.get(Event::kGldRequest) /
                       small.counters.get(Event::kGldRequest);
  EXPECT_NEAR(ratio, 16.0, 1.0);
  EXPECT_GT(large.time_ms, small.time_ms);
}

TEST(Reduce, LoadsAreCoalesced) {
  const Device dev(gtx580());
  const auto agg = simulate_reduction(dev, 2, 1 << 18);
  // Sequential 4-byte loads: ~1 transaction (128 B) per warp request.
  const double per_request =
      agg.counters.get(Event::kGlobalLoadTransaction) /
      agg.counters.get(Event::kGldRequest);
  EXPECT_NEAR(per_request, 1.0, 0.15);
}

// ---- matrix multiply ----

TEST(MatMul, GeometryAndValidation) {
  const MatMulKernel k(256, 16);
  EXPECT_EQ(k.geometry().num_blocks(), 16 * 16);
  EXPECT_EQ(k.geometry().block_size(), 256);
  EXPECT_THROW(MatMulKernel(100, 16), Error);  // not a multiple
  EXPECT_THROW(MatMulKernel(64, 4), Error);    // tile too small
}

TEST(MatMul, SharedAccessesConflictFree) {
  const Device dev(gtx580());
  const auto agg = simulate_matmul(dev, 128);
  EXPECT_DOUBLE_EQ(agg.counters.get(Event::kSharedBankConflict), 0.0);
}

TEST(MatMul, LoadStoreRatioMatchesTiling) {
  // Per warp: 2 loads per tile over n/16 tiles, 1 store at the end.
  const int n = 256;
  const Device dev(gtx580());
  const auto agg = simulate_matmul(dev, n);
  const double ratio = agg.counters.get(Event::kGldRequest) /
                       agg.counters.get(Event::kGstRequest);
  EXPECT_NEAR(ratio, 2.0 * n / 16.0, 1.0);
}

TEST(MatMul, FlopCountMatches2N3) {
  const int n = 128;
  const Device dev(gtx580());
  const auto agg = simulate_matmul(dev, n);
  // One FMA per k-step per thread = n^3 FMAs (counted as lane-ops).
  EXPECT_NEAR(agg.counters.get(Event::kFlopCount),
              static_cast<double>(n) * n * n,
              0.02 * static_cast<double>(n) * n * n);
}

TEST(MatMul, TimeSuperlinearInN) {
  const Device dev(gtx580());
  const double t256 = simulate_matmul(dev, 256).time_ms;
  const double t512 = simulate_matmul(dev, 512).time_ms;
  EXPECT_GT(t512, 4.0 * t256);  // O(n^3) work, allow wide latitude
  EXPECT_LT(t512, 16.0 * t256);
}

// ---- Needleman-Wunsch ----

TEST(Nw, GeometryAndValidation) {
  const NwDiagonalKernel k(512, 3, 4, 1);
  EXPECT_EQ(k.geometry().num_blocks(), 4);
  EXPECT_EQ(k.geometry().block_size(), kNwBlockSize);
  EXPECT_THROW(NwDiagonalKernel(100, 0, 1, 1), Error);  // not multiple of 16
  EXPECT_THROW(NwDiagonalKernel(512, 0, 1, 3), Error);  // bad traversal
  EXPECT_THROW(NwDiagonalKernel(512, 0, 99, 1), Error);  // too wide
}

TEST(Nw, HasBankConflictsAndUncoalescedLoads) {
  const Device dev(gtx580());
  const auto agg = simulate_nw(dev, 256);
  // The anti-diagonal shared indexing conflicts...
  EXPECT_GT(agg.counters.get(Event::kSharedBankConflict), 100.0);
  // ...and the west-column global loads are uncoalesced: far more
  // transactions than a same-size coalesced pattern would need.
  const double per_request =
      agg.counters.get(Event::kGlobalLoadTransaction) /
      agg.counters.get(Event::kGldRequest);
  EXPECT_GT(per_request, 1.2);
}

TEST(Nw, LaunchCountMatchesRodiniaLoops) {
  const Device dev(gtx580());
  const int len = 256;  // 16 tile rows
  const auto agg = simulate_nw(dev, len);
  // kernel1: 16 strips, kernel2: 15 strips.
  EXPECT_EQ(agg.launches, 31);
}

TEST(Nw, OccupancyIsLow) {
  // 16-thread blocks cap residency at the block-slot limit (paper §6.1.2:
  // "This leads to idling of some threads in the warps").
  const Device dev(gtx580());
  const auto agg = simulate_nw(dev, 512);
  const double avg_warps = agg.counters.get(Event::kActiveWarpCycles) /
                           agg.counters.get(Event::kActiveCycles);
  EXPECT_LT(avg_warps / gtx580().max_warps_per_sm, 0.25);
}

TEST(Nw, KeplerReportsNoL1GlobalLoadMisses) {
  // The Fig. 8 mechanism: l1_global_load_miss is meaningful on Fermi and
  // identically zero on the K20m.
  const Device fermi(gtx580());
  const Device kepler(kepler_k20m());
  const auto f = simulate_nw(fermi, 256);
  const auto k = simulate_nw(kepler, 256);
  EXPECT_GT(f.counters.get(Event::kL1GlobalLoadMiss), 0.0);
  EXPECT_DOUBLE_EQ(k.counters.get(Event::kL1GlobalLoadMiss), 0.0);
}

TEST(Nw, TimeGrowsSuperlinearlyOnceDeviceFills) {
  // Below one full wave of blocks the strips run concurrently and time
  // grows ~linearly in the diagonal count; well past saturation the
  // quadratic block count dominates. 1024 -> 4096 is a 16x cell count.
  const Device dev(gtx580());
  const double t1 = simulate_nw(dev, 1024).time_ms;
  const double t2 = simulate_nw(dev, 4096).time_ms;
  EXPECT_GT(t2, 5.0 * t1);
  EXPECT_LT(t2, 40.0 * t1);
}

// ---- misc kernels ----

TEST(Misc, VecAddPerfectlyCoalesced) {
  const Device dev(gtx580());
  gpusim::AggregateResult agg;
  agg.add(dev.run(VecAddKernel(1 << 18)));
  const double per_request =
      agg.counters.get(Event::kGlobalLoadTransaction) /
      agg.counters.get(Event::kGldRequest);
  EXPECT_NEAR(per_request, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(agg.counters.get(Event::kSharedBankConflict), 0.0);
}

TEST(Misc, VecAddPartialTailMasked) {
  const Device dev(gtx580());
  const VecAddKernel k(1000, 256);  // 24 inactive lanes in the tail
  const auto r = dev.run(k);
  // 1000 elements * 2 loads * 4 B requested.
  EXPECT_DOUBLE_EQ(r.counters.get(Event::kGlobalLoadBytesRequested),
                   8000.0);
}

TEST(Misc, TransposeNaiveUncoalescedStores) {
  const Device dev(gtx580());
  const auto naive = dev.run(TransposeKernel(256, TransposeVariant::kNaive));
  // Column-major stores: 32 transactions per store request.
  const double per_store =
      naive.counters.get(Event::kGlobalStoreTransaction) /
      naive.counters.get(Event::kGstRequest);
  EXPECT_GT(per_store, 16.0);
}

TEST(Misc, TransposeTiledConflictsPaddedClean) {
  const Device dev(gtx580());
  const auto tiled = dev.run(TransposeKernel(256, TransposeVariant::kTiled));
  const auto padded =
      dev.run(TransposeKernel(256, TransposeVariant::kTiledPadded));
  EXPECT_GT(tiled.counters.get(Event::kSharedBankConflict), 1000.0);
  EXPECT_DOUBLE_EQ(padded.counters.get(Event::kSharedBankConflict), 0.0);
  EXPECT_LT(padded.time_ms, tiled.time_ms);
}

TEST(Misc, TransposeOptimisationLadder) {
  const Device dev(gtx580());
  const double naive =
      dev.run(TransposeKernel(512, TransposeVariant::kNaive)).time_ms;
  const double padded =
      dev.run(TransposeKernel(512, TransposeVariant::kTiledPadded)).time_ms;
  EXPECT_LT(padded, naive);
}

TEST(Misc, StencilReusesCache) {
  const Device dev(gtx580());
  const auto r = dev.run(Stencil5Kernel(512));
  // 5 loads per cell but neighbours share lines: L1 must hit a lot.
  // West/east neighbours share the centre's cache line; north/south rows
  // live on distinct lines, so roughly 2 of 5 accesses hit.
  const double hits = r.counters.get(Event::kL1GlobalLoadHit);
  const double misses = r.counters.get(Event::kL1GlobalLoadMiss);
  EXPECT_GT(hits, 0.5 * misses);
  EXPECT_GT(hits, 0.0);
}

class ReduceVariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceVariantSweep, CountersInternallyConsistent) {
  const Device dev(gtx580());
  const auto agg = simulate_reduction(dev, GetParam(), 1 << 16);
  const auto& c = agg.counters;
  EXPECT_GE(c.get(Event::kInstIssued), c.get(Event::kInstExecuted));
  EXPECT_GE(c.get(Event::kBranch), c.get(Event::kDivergentBranch));
  EXPECT_GT(c.get(Event::kSharedLoad), 0.0);
  EXPECT_GT(c.get(Event::kSharedStore), 0.0);
  EXPECT_GT(c.get(Event::kGldRequest), 0.0);
  // Every executed warp instruction has at least one active lane.
  EXPECT_GE(c.get(Event::kThreadInstExecuted), c.get(Event::kInstExecuted));
}

INSTANTIATE_TEST_SUITE_P(Variants, ReduceVariantSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace bf::kernels
