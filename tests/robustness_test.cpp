// Failure injection and edge-case robustness across modules: corrupt
// repository files, malformed datasets, degenerate model inputs,
// misbehaving workloads.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "core/counter_models.hpp"
#include "core/model.hpp"
#include "ml/dataset.hpp"
#include "ml/linear_model.hpp"
#include "ml/tree.hpp"
#include "profiling/profiler.hpp"
#include "profiling/repository.hpp"

namespace bf {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bf_robust_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

// ---- repository failure injection ----
//
// Corruption never aborts an analysis: the damaged entry is quarantined
// (renamed to .quarantined) and load() reports it absent, so
// get_or_collect() recollects. Strict mode (quarantine_on_corrupt=false)
// restores throw-on-corrupt for callers that want the loud failure.

using RepositoryRobustness = TempDir;

namespace {

/// Plant raw bytes where a sweep entry would live.
void plant(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary) << bytes;
}

/// Assert the entry was quarantined and that get_or_collect recollects.
void expect_quarantine_and_recollect(
    const profiling::RunRepository& repo,
    const std::filesystem::path& entry) {
  EXPECT_FALSE(repo.load("needle", "gtx580").has_value());
  EXPECT_FALSE(std::filesystem::exists(entry));
  const std::filesystem::path quarantined =
      entry.string() + ".quarantined";
  EXPECT_TRUE(std::filesystem::exists(quarantined));

  int produced = 0;
  ml::Dataset fresh;
  fresh.add_column("size", {64, 128});
  fresh.add_column("time_ms", {1.5, 2.5});
  const auto got = repo.get_or_collect("needle", "gtx580", [&] {
    ++produced;
    return fresh;
  });
  EXPECT_EQ(produced, 1);
  EXPECT_EQ(got.num_rows(), 2u);
  // The recollected entry is valid and served from disk next time.
  EXPECT_EQ(repo.load("needle", "gtx580")->num_rows(), 2u);
}

}  // namespace

TEST_F(RepositoryRobustness, CorruptCellQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  const auto entry = dir_ / "needle__gtx580.csv";
  plant(entry, "size,time_ms\n1024,not_a_number\n");
  EXPECT_TRUE(repo.contains("needle", "gtx580"));
  expect_quarantine_and_recollect(repo, entry);
}

TEST_F(RepositoryRobustness, GarbageHeaderQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  const auto entry = dir_ / "needle__gtx580.csv";
  plant(entry, "\x7f\x45\x4c\x46 this is not a csv at all\n\x01\x02");
  expect_quarantine_and_recollect(repo, entry);
}

TEST_F(RepositoryRobustness, EmptyFileQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  const auto entry = dir_ / "needle__gtx580.csv";
  plant(entry, "");
  EXPECT_TRUE(repo.contains("needle", "gtx580"));
  expect_quarantine_and_recollect(repo, entry);
}

TEST_F(RepositoryRobustness, TruncatedEntryQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  ml::Dataset ds;
  ds.add_column("size", {64, 128, 256});
  ds.add_column("time_ms", {1, 2, 3});
  repo.save("needle", "gtx580", ds);
  ASSERT_TRUE(repo.load("needle", "gtx580").has_value());

  // Torn write / partial flush: only half the bytes survived.
  const auto entry = dir_ / "needle__gtx580.csv";
  const auto size = std::filesystem::file_size(entry);
  std::filesystem::resize_file(entry, size / 2);
  expect_quarantine_and_recollect(repo, entry);
}

TEST_F(RepositoryRobustness, BadChecksumQuarantinedAndRecollected) {
  const profiling::RunRepository repo(dir_.string());
  ml::Dataset ds;
  ds.add_column("size", {64, 128});
  ds.add_column("time_ms", {1, 2});
  repo.save("needle", "gtx580", ds);

  // Bit rot: flip one payload byte; the footer no longer matches.
  const auto entry = dir_ / "needle__gtx580.csv";
  std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(18);
  f.put('7');
  f.close();
  expect_quarantine_and_recollect(repo, entry);
}

TEST_F(RepositoryRobustness, StrictModeStillThrowsOnCorruption) {
  profiling::RepositoryOptions strict;
  strict.quarantine_on_corrupt = false;
  const profiling::RunRepository repo(dir_.string(), strict);
  const auto entry = dir_ / "needle__gtx580.csv";
  plant(entry, "size,time_ms\n1024,not_a_number\n");
  EXPECT_THROW(repo.load("needle", "gtx580"), Error);
  EXPECT_TRUE(std::filesystem::exists(entry));  // nothing moved
}

TEST_F(RepositoryRobustness, QuarantinedEntriesExcludedFromKeys) {
  const profiling::RunRepository repo(dir_.string());
  ml::Dataset ds;
  ds.add_column("size", {64});
  ds.add_column("time_ms", {1});
  repo.save("needle", "gtx580", ds);
  plant(dir_ / "reduce1__gtx580.csv", "garbage");
  EXPECT_FALSE(repo.load("reduce1", "gtx580").has_value());  // quarantines
  const auto keys = repo.keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].first, "needle");
}

TEST_F(RepositoryRobustness, FailedProducerLeavesNoEntryBehind) {
  const profiling::RunRepository repo(dir_.string());
  EXPECT_THROW(repo.get_or_collect("needle", "gtx580",
                                   []() -> ml::Dataset {
                                     throw Error("producer exploded");
                                   }),
               Error);
  EXPECT_FALSE(repo.contains("needle", "gtx580"));
  // No temp-file debris either: the directory is untouched.
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(RepositoryRobustness, KeySanitisation) {
  const profiling::RunRepository repo(dir_.string());
  ml::Dataset ds;
  ds.add_column("x", {1});
  // Slashes and spaces must not escape the repository directory.
  repo.save("../evil name", "arch/1", ds);
  bool inside = false;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    inside |= e.is_regular_file();
  }
  EXPECT_TRUE(inside);
  EXPECT_FALSE(std::filesystem::exists(
      dir_.parent_path() / "evil name__arch_1.csv"));
}

// ---- atomic_write_file edge cases ----
//
// The crash-safe writer under every persisting layer (repository,
// .bfmodel bundles, guard JSON): empty payloads, overwrites and bad
// target directories must all behave predictably.

using AtomicWriteRobustness = TempDir;

TEST_F(AtomicWriteRobustness, EmptyPayloadWritesEmptyFile) {
  const auto path = (dir_ / "empty.txt").string();
  atomic_write_file(path, "");
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  EXPECT_EQ(*read_file(path), "");
}

TEST_F(AtomicWriteRobustness, OverwriteReplacesContentCompletely) {
  const auto path = (dir_ / "entry.txt").string();
  atomic_write_file(path, "the longer original content\n");
  atomic_write_file(path, "short");
  // Full replacement, no stale tail from the longer first version.
  EXPECT_EQ(*read_file(path), "short");
  // No temp file left behind by either write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(AtomicWriteRobustness, MissingTargetDirectoryFailsCleanly) {
  const auto path = (dir_ / "no" / "such" / "dir" / "entry.txt").string();
  EXPECT_THROW(atomic_write_file(path, "payload"), Error);
  // The failed write leaves nothing behind — no destination, no temp.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---- dataset / CSV edge cases ----

TEST(DatasetRobustness, FromCsvRejectsNonNumeric) {
  std::istringstream is("a,b\n1,hello\n");
  const CsvTable table = CsvTable::read(is);
  EXPECT_THROW(ml::Dataset::from_csv(table), Error);
}

TEST(DatasetRobustness, SplitOnTinyDataset) {
  ml::Dataset ds;
  ds.add_column("x", {1});
  Rng rng(1);
  EXPECT_THROW(ml::train_test_split(ds, 0.2, rng), Error);  // 1 row
}

TEST(DatasetRobustness, ConstantResponseRejectedByModel) {
  ml::Dataset ds;
  ds.add_column("size", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  ds.add_column("time_ms", std::vector<double>(10, 5.0));
  EXPECT_THROW(core::BlackForestModel::fit(ds, {}), Error);
}

TEST(DatasetRobustness, PLargerThanN) {
  // More predictors than rows must still fit (mtry handles it).
  ml::Dataset ds;
  Rng rng(2);
  for (int c = 0; c < 12; ++c) {
    std::vector<double> col(6);
    for (auto& v : col) v = rng.uniform(0, 1);
    ds.add_column("c" + std::to_string(c), col);
  }
  ds.add_column("time_ms", {1, 2, 3, 4, 5, 6});
  core::ModelOptions opt;
  opt.forest.n_trees = 30;
  opt.test_fraction = 0.0;
  EXPECT_NO_THROW(core::BlackForestModel::fit(ds, opt));
}

// ---- degenerate model inputs ----

TEST(TreeRobustness, AllIdenticalFeatureValuesSingleLeaf) {
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = 7.0;  // constant feature
    y[i] = static_cast<double>(i);
  }
  ml::RegressionTree tree;
  Rng rng(3);
  tree.fit(x, y, ml::TreeParams{}, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);  // nothing to split on
  EXPECT_DOUBLE_EQ(tree.predict(x)[0], 9.5);
}

TEST(GlmRobustness, LogLinkConvergesOnNoisyData) {
  Rng rng(4);
  linalg::Matrix x(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i) / 6.0;
    y[i] = 3.0 * std::exp(0.4 * x(i, 0)) *
           std::exp(rng.normal(0.0, 0.05));
  }
  ml::Glm glm;
  ml::GlmParams p;
  p.link = ml::LinkFunction::kLog;
  p.degree = 1;
  p.log_terms = false;
  glm.fit(x, y, p);
  EXPECT_GT(glm.r_squared(), 0.98);
}

TEST(CounterModelsRobustness, OptionFlagsRespected) {
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> counter;
  for (int i = 1; i <= 24; ++i) {
    sizes.push_back(64.0 * i);
    counter.push_back(5.0 * 64.0 * i);
  }
  ds.add_column("size", sizes);
  ds.add_column("c", counter);

  core::CounterModelOptions glm_only;
  glm_only.kind = core::CounterModelKind::kGlm;
  const auto a = core::CounterModels::fit(ds, {"c"}, glm_only);
  EXPECT_EQ(a.info()[0].chosen, core::CounterModelKind::kGlm);

  core::CounterModelOptions mars_only;
  mars_only.kind = core::CounterModelKind::kMars;
  const auto b = core::CounterModels::fit(ds, {"c"}, mars_only);
  EXPECT_EQ(b.info()[0].chosen, core::CounterModelKind::kMars);

  core::CounterModelOptions raw;
  raw.log_inputs = false;
  raw.auto_log_response = false;
  const auto c = core::CounterModels::fit(ds, {"c"}, raw);
  EXPECT_GT(c.info()[0].r2, 0.999);  // linear counter fits either way
}

TEST(CounterModelsRobustness, NegativeCountersSkipLogResponse) {
  // A counter crossing zero cannot be log-modelled; auto mode must cope.
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> counter;
  for (int i = 1; i <= 16; ++i) {
    sizes.push_back(16.0 * i);
    counter.push_back(i - 8.0);  // negative half the range
  }
  ds.add_column("size", sizes);
  ds.add_column("c", counter);
  const auto models = core::CounterModels::fit(ds, {"c"});
  EXPECT_GT(models.info()[0].r2, 0.99);
  const auto pred = models.predict({40.0});
  EXPECT_NEAR(pred[0].second, 40.0 / 16.0 - 8.0, 0.5);
}

// ---- misbehaving workloads ----

TEST(ProfilerRobustness, ZeroTimeWorkloadRejected) {
  profiling::Workload w;
  w.name = "broken";
  w.run = [](const gpusim::Device&, double) {
    return gpusim::AggregateResult{};  // zero time, no launches
  };
  const gpusim::Device device(gpusim::gtx580());
  profiling::Profiler profiler;
  EXPECT_THROW(profiler.profile(w, device, 100.0), Error);
}

TEST(ProfilerRobustness, MissingRunFunctionRejected) {
  profiling::Workload w;
  w.name = "empty";
  const gpusim::Device device(gpusim::gtx580());
  profiling::Profiler profiler;
  EXPECT_THROW(profiler.profile(w, device, 100.0), Error);
}

}  // namespace
}  // namespace bf
