#!/bin/sh
# End-to-end hot reload under load: export two bundle variants, start
# bf_serve with the staleness watcher armed, drive measured traffic with
# bf_loadgen while its churn thread hot-swaps the bundle on disk, then
# assert the supervision contract over the wire:
#   - zero dropped connections and zero non-shed errors under churn,
#   - promotions really happened (stats reply),
#   - the same bundle content predicts bit-identically across
#     generations,
#   - pin freezes a generation against the watcher and the reload verb,
#   - a corrupt swap rolls back: old generation keeps serving, the file
#     is quarantined, and the rollback is visible in the stats reply,
#   - SIGTERM still drains to exit 0.
# Run by ctest as
#   serve_reload_e2e.sh <bf_analyze> <bf_serve> <bf_loadgen>
set -eu

BF_ANALYZE=$1
BF_SERVE=$2
BF_LOADGEN=$3
WORK=$(mktemp -d "${TMPDIR:-/tmp}/bf_reload_e2e.XXXXXX")
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_reload_e2e: FAIL: $1" >&2
  [ -f "$WORK/serve.log" ] && cat "$WORK/serve.log" >&2
  exit 1
}

oneshot() {
  "$BF_LOADGEN" --socket "$SOCK" --oneshot "$1"
}

# Poll the stats reply until it matches a pattern (the watcher period is
# 50ms; give it ten seconds).
wait_stats() {
  tries=0
  until oneshot '{"cmd":"stats"}' | grep -q "$1"; do
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && fail "stats never matched $1: $(oneshot '{"cmd":"stats"}' || true)"
    sleep 0.1
  done
}

predicted_ms() {
  printf '%s' "$1" | sed 's/.*"predicted_ms":\([^,]*\),.*/\1/'
}

# --- export two genuinely different bundle generations ---
"$BF_ANALYZE" --workload reduce1 --runs 8 --trees 30 \
    --min 16384 --max 1048576 \
    --export-model "$WORK/gen_a.bfmodel" >/dev/null
"$BF_ANALYZE" --workload reduce1 --runs 10 --trees 30 \
    --min 16384 --max 1048576 \
    --export-model "$WORK/gen_b.bfmodel" >/dev/null
cmp -s "$WORK/gen_a.bfmodel" "$WORK/gen_b.bfmodel" \
    && fail "bundle variants are identical"
CK_A=$(head -3 "$WORK/gen_a.bfmodel" | sed -n 's/^checksum fnv1a64 //p')
CK_B=$(head -3 "$WORK/gen_b.bfmodel" | sed -n 's/^checksum fnv1a64 //p')
[ -n "$CK_A" ] && [ -n "$CK_B" ] || fail "cannot read bundle checksums"
cp "$WORK/gen_a.bfmodel" "$WORK/reduce1.bfmodel"

# --- start the server with the staleness watcher armed ---
SOCK="$WORK/bf.sock"
"$BF_SERVE" --model-dir "$WORK" --socket "$SOCK" --reload-watch-ms 50 \
    --max-queue 64 --timeout-ms 10000 --drain-ms 3000 \
    2>"$WORK/serve.log" &
SERVE_PID=$!
tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "server never bound $SOCK"
  kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done

# --- baseline: generation 1 serves variant A ---
R0=$(oneshot '{"model":"reduce1","size":65536}') \
    || fail "baseline predict failed"
case "$R0" in
  *'"generation":1,'*) ;;
  *) fail "baseline is not generation 1: $R0" ;;
esac
P_A=$(predicted_ms "$R0")

# --- measured traffic while the churn thread hot-swaps the bundle ---
BENCH="$WORK/BENCH_serve.json"
"$BF_LOADGEN" --socket "$SOCK" --model reduce1 \
    --requests 300 --conns 4 --qps 400 --seed 7 \
    --reload-churn 100 --churn-file "$WORK/reduce1.bfmodel" \
    --churn-src "$WORK/gen_a.bfmodel,$WORK/gen_b.bfmodel" \
    --out "$BENCH" >/dev/null || fail "loadgen failed under churn"
[ -f "$BENCH" ] || fail "BENCH_serve.json was not written"

check() {
  grep -q "$1" "$BENCH" || fail "BENCH_serve.json lacks $1 ($(cat "$BENCH"))"
}
# The reload contract under load: every request answered, none dropped,
# none failed — a promotion must never surface as client-visible errors.
check '"ok":300'
check '"no_reply":0'
check '"error_fraction":0[,.}]'
check '"shed_fraction":0[,.}]'
check '"churn":{"period_ms":100'
grep -q '"churns":0' "$BENCH" && fail "churn thread never rewrote the bundle"

kill -0 "$SERVE_PID" 2>/dev/null || fail "server died under churn"
STATS=$(oneshot '{"cmd":"stats"}') || fail "stats failed after churn"
case "$STATS" in
  *'"promotions":0'*) fail "watcher promoted nothing under churn: $STATS" ;;
esac

# --- per-generation bit identity: restoring variant A must reproduce
# the generation-1 prediction exactly, however many swaps later ---
cp "$WORK/gen_a.bfmodel" "$WORK/reduce1.bfmodel"
wait_stats "\"checksum\":\"$CK_A\""
R1=$(oneshot '{"model":"reduce1","size":65536}') \
    || fail "predict after churn failed"
[ "$(predicted_ms "$R1")" = "$P_A" ] \
    || fail "variant A predicts differently across generations: $R1"

# --- pin freezes the generation against watcher and reload verb ---
RPIN=$(oneshot '{"cmd":"pin","model":"reduce1"}') || fail "pin verb failed"
case "$RPIN" in
  *'"resident":true'*) ;;
  *) fail "pin did not confirm residency: $RPIN" ;;
esac
cp "$WORK/gen_b.bfmodel" "$WORK/reduce1.bfmodel"
RRELOAD=$(oneshot '{"cmd":"reload","model":"reduce1"}') \
    || fail "reload verb failed while pinned"
case "$RRELOAD" in
  *'"status":"pinned"'*) ;;
  *) fail "pinned model accepted a reload: $RRELOAD" ;;
esac
sleep 0.3  # several watcher periods: the pin must hold against polling
oneshot '{"cmd":"stats"}' | grep -q "\"checksum\":\"$CK_A\"" \
    || fail "watcher replaced a pinned model"
oneshot '{"cmd":"unpin","model":"reduce1"}' >/dev/null \
    || fail "unpin verb failed"
# Unpinned, the pending variant B promotes (watcher or explicit verb).
wait_stats "\"checksum\":\"$CK_B\""
R2=$(oneshot '{"model":"reduce1","size":65536}') || fail "predict B failed"
P_B=$(predicted_ms "$R2")

# --- corrupt swap: rollback, quarantine, old generation keeps serving ---
STATS=$(oneshot '{"cmd":"stats"}') || fail "stats failed before corruption"
GEN_BEFORE=$(printf '%s' "$STATS" \
    | sed -n 's/.*"models":\[{[^}]*"generation":\([0-9]*\).*/\1/p')
[ -n "$GEN_BEFORE" ] || fail "cannot read generation from stats: $STATS"
SIZE=$(wc -c < "$WORK/reduce1.bfmodel")
printf '\001' | dd of="$WORK/reduce1.bfmodel" bs=1 seek=$((SIZE - 20)) \
    conv=notrunc 2>/dev/null
wait_stats '"rollbacks":[1-9]'
[ -f "$WORK/reduce1.bfmodel.quarantined" ] \
    || fail "corrupt swap was not quarantined"
[ ! -f "$WORK/reduce1.bfmodel" ] || fail "corrupt bundle still in place"
STATS=$(oneshot '{"cmd":"stats"}') || fail "stats failed after rollback"
case "$STATS" in
  *"\"generation\":$GEN_BEFORE"*) ;;
  *) fail "rollback changed the serving generation: $STATS" ;;
esac
R3=$(oneshot '{"model":"reduce1","size":65536}') \
    || fail "predict after rollback failed"
[ "$(predicted_ms "$R3")" = "$P_B" ] \
    || fail "rollback changed the served prediction: $R3"

# --- graceful drain still works with the watcher thread running ---
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "drain exited $rc, want 0"
SERVE_PID=""

echo "serve_reload_e2e: OK"
