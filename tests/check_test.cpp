// bf::check counter-invariant analysis.
//
// Two halves: (1) every rule in the table can fire — a deliberately
// corrupted CounterSet trips exactly the law it breaks; (2) the rules
// stay silent on real engine output across the full arch x kernel
// matrix, on profiled (noisy) metrics, and on stored sweep datasets.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "common/error.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/engine.hpp"
#include "kernels/matmul.hpp"
#include "profiling/profiler.hpp"
#include "profiling/repository.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

namespace bf {
namespace {

using check::Violation;
using gpusim::CounterSet;
using gpusim::Event;

/// A hand-built counter set satisfying every conservation law for the
/// given architecture (Fermi routes global loads through L1; Kepler must
/// report zero L1 global-load activity).
CounterSet consistent_counters(const gpusim::ArchSpec& arch) {
  CounterSet c;
  c.set(Event::kInstExecuted, 1000);
  c.set(Event::kInstIssued, 1100);
  c.set(Event::kThreadInstExecuted, 32000);
  c.set(Event::kFlopCount, 16000);
  c.set(Event::kBranch, 100);
  c.set(Event::kDivergentBranch, 10);
  c.set(Event::kGldRequest, 100);
  c.set(Event::kGlobalLoadTransaction, 400);
  if (arch.l1_caches_global_loads) {
    c.set(Event::kL1GlobalLoadHit, 300);
    c.set(Event::kL1GlobalLoadMiss, 100);
  }
  c.set(Event::kL2ReadTransactions, 400);
  c.set(Event::kL2ReadHit, 60);
  c.set(Event::kL2ReadMiss, 40);
  c.set(Event::kDramReadTransactions, 160);
  c.set(Event::kGstRequest, 50);
  c.set(Event::kGlobalStoreTransaction, 200);
  c.set(Event::kL2WriteTransactions, 200);
  c.set(Event::kDramWriteTransactions, 100);
  c.set(Event::kSharedLoad, 200);
  c.set(Event::kSharedStore, 100);
  c.set(Event::kSharedLoadReplay, 50);
  c.set(Event::kSharedStoreReplay, 20);
  c.set(Event::kSharedBankConflict, 70);
  c.set(Event::kActiveCycles, 10000);
  c.set(Event::kActiveWarpCycles, 300000);
  c.set(Event::kIssueSlotsTotal, 20000);
  c.set(Event::kElapsedCycles, 10000);
  c.set(Event::kGlobalLoadBytesRequested, 12800);
  c.set(Event::kGlobalStoreBytesRequested, 6400);
  return c;
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  for (const auto& v : vs) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(CheckRules, ConsistentCountersAreClean) {
  for (const char* arch_name : {"gtx580", "gtx480", "k20m", "k40"}) {
    const auto& arch = gpusim::arch_by_name(arch_name);
    const auto violations = check::validate(consistent_counters(arch), arch);
    EXPECT_TRUE(violations.empty())
        << arch_name << ":\n"
        << check::to_string(violations);
  }
}

struct CorruptionCase {
  const char* rule;  // the rule expected to fire
  const char* arch;  // architecture to validate on
  std::function<void(CounterSet&)> corrupt;
};

TEST(CheckRules, EveryRuleFiresOnCorruptedCounters) {
  const std::vector<CorruptionCase> cases = {
      {"nonneg_inst_executed", "gtx580",
       [](CounterSet& c) { c.set(Event::kInstExecuted, -5); }},
      {"nonneg_dram_read_transactions", "k20m",
       [](CounterSet& c) { c.set(Event::kDramReadTransactions, -1); }},
      {"issued_ge_executed", "gtx580",
       [](CounterSet& c) { c.set(Event::kInstIssued, 900); }},
      {"branch_le_executed", "gtx580",
       [](CounterSet& c) { c.set(Event::kBranch, 2000); }},
      {"divergent_le_branch", "gtx580",
       [](CounterSet& c) { c.set(Event::kDivergentBranch, 150); }},
      {"thread_inst_warp_bound", "gtx580",
       [](CounterSet& c) { c.set(Event::kThreadInstExecuted, 33000); }},
      {"flops_le_lanes", "gtx580",
       [](CounterSet& c) { c.set(Event::kFlopCount, 32500); }},
      {"gld_trans_ge_requests", "gtx580",
       [](CounterSet& c) { c.set(Event::kGldRequest, 500); }},
      {"gld_trans_warp_bound", "gtx580",
       [](CounterSet& c) { c.set(Event::kGlobalLoadTransaction, 7000); }},
      {"gst_trans_ge_requests", "gtx580",
       [](CounterSet& c) { c.set(Event::kGstRequest, 300); }},
      {"gst_trans_warp_bound", "gtx580",
       [](CounterSet& c) { c.set(Event::kGlobalStoreTransaction, 4000); }},
      {"l1_partitions_gld_trans", "gtx580",
       [](CounterSet& c) { c.set(Event::kL1GlobalLoadHit, 307); }},
      {"kepler_l1_quiescent", "k20m",
       [](CounterSet& c) { c.set(Event::kL1GlobalLoadMiss, 50); }},
      {"l2_reads_cover_l1_miss", "gtx580",
       [](CounterSet& c) { c.set(Event::kL2ReadTransactions, 90); }},
      {"l2_reads_cover_gld", "k20m",
       [](CounterSet& c) { c.set(Event::kL2ReadTransactions, 90); }},
      {"l2_accesses_le_reads", "gtx580",
       [](CounterSet& c) { c.set(Event::kL2ReadHit, 1000); }},
      {"dram_reads_cover_l2_miss", "gtx580",
       [](CounterSet& c) { c.set(Event::kL2ReadMiss, 300); }},
      {"l2_writes_cover_stores", "gtx580",
       [](CounterSet& c) { c.set(Event::kL2WriteTransactions, 10); }},
      {"shared_load_replay_bound", "k20m",
       [](CounterSet& c) { c.set(Event::kSharedLoadReplay, 7000); }},
      {"shared_store_replay_bound", "k20m",
       [](CounterSet& c) { c.set(Event::kSharedStoreReplay, 4000); }},
      {"bank_conflict_partition", "gtx580",
       [](CounterSet& c) { c.set(Event::kSharedBankConflict, 71); }},
      {"bank_conflict_bound", "gtx580",
       [](CounterSet& c) {
         // Keep the partition law intact so only the bound fires.
         c.set(Event::kSharedLoadReplay, 9000);
         c.set(Event::kSharedStoreReplay, 1000);
         c.set(Event::kSharedBankConflict, 10000);
       }},
      {"occupancy_warp_bound", "gtx580",
       [](CounterSet& c) { c.set(Event::kActiveWarpCycles, 1e7); }},
      {"issued_le_slots", "gtx580",
       [](CounterSet& c) { c.set(Event::kIssueSlotsTotal, 500); }},
      {"active_le_elapsed_total", "gtx580",
       [](CounterSet& c) { c.set(Event::kElapsedCycles, 10); }},
  };

  for (const auto& tc : cases) {
    const auto& arch = gpusim::arch_by_name(tc.arch);
    CounterSet c = consistent_counters(arch);
    tc.corrupt(c);
    const auto violations = check::validate(c, arch);
    EXPECT_TRUE(has_rule(violations, tc.rule))
        << "expected rule '" << tc.rule << "' to fire on " << tc.arch
        << "; got:\n"
        << check::to_string(violations);
  }
}

TEST(CheckRules, RuleLookupAndRendering) {
  EXPECT_GE(check::rule_table().size(), 40u);
  const auto& rule = check::rule_by_id("issued_ge_executed");
  EXPECT_EQ(rule.expr(), "inst_issued >= inst_executed");
  EXPECT_THROW(check::rule_by_id("no_such_rule"), bf::Error);

  const auto& arch = gpusim::arch_by_name("gtx580");
  CounterSet c = consistent_counters(arch);
  c.set(Event::kInstIssued, 900);
  const auto violations = check::validate(c, arch);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(check::to_string(violations).find("issued_ge_executed"),
            std::string::npos);
  EXPECT_THROW(check::throw_if_errors(violations, "test data"), bf::Error);
  check::throw_if_errors({}, "clean data");  // must not throw
}

// ---- engine output stays clean across the full test matrix ----

struct MatrixEntry {
  const char* workload;
  double size;
};

TEST(CheckEngine, EngineCountersSatisfyInvariantsEverywhere) {
  const std::vector<MatrixEntry> kernels = {
      {"reduce1", 1 << 14}, {"matrixMul", 64},   {"needle", 128},
      {"vecAdd", 1 << 14},  {"stencil5", 64},
  };
  for (const char* arch_name : {"gtx580", "gtx480", "k20m", "k40"}) {
    const gpusim::Device device(gpusim::arch_by_name(arch_name));
    for (const auto& entry : kernels) {
      const auto workload = profiling::workload_by_name(entry.workload);
      const auto agg = workload.run(device, entry.size);
      const auto violations =
          check::validate(agg.counters, device.arch());
      EXPECT_TRUE(violations.empty())
          << entry.workload << " on " << arch_name << ":\n"
          << check::to_string(violations);
    }
  }
}

TEST(CheckEngine, ProfiledMetricsSatisfyInvariants) {
  profiling::Profiler profiler;
  for (const char* arch_name : {"gtx580", "k20m"}) {
    const gpusim::Device device(gpusim::arch_by_name(arch_name));
    const auto workload = profiling::workload_by_name("matrixMul");
    const auto result = profiler.profile(workload, device, 96);
    const auto violations =
        check::validate_metrics(result.counters, device.arch());
    EXPECT_TRUE(violations.empty())
        << arch_name << ":\n"
        << check::to_string(violations);
  }
}

TEST(CheckEngine, ProfilerValidateOptionAccepts) {
  profiling::ProfilerOptions options;
  options.validate = true;
  profiling::Profiler profiler(options);
  const gpusim::Device device(gpusim::arch_by_name("gtx580"));
  const auto workload = profiling::workload_by_name("vecAdd");
  EXPECT_NO_THROW(profiler.profile(workload, device, 1 << 14));
}

TEST(CheckEngine, EngineHookValidatesRuns) {
  check::install_engine_validator();
  gpusim::RunOptions opts;
  opts.validate_counters = true;
  const gpusim::Device device(gpusim::arch_by_name("k20m"));
  const kernels::MatMulKernel kernel(64);
  EXPECT_NO_THROW(device.run(kernel, opts));
  check::uninstall_engine_validator();
}

// ---- datasets and the run repository ----

TEST(CheckDataset, SweepDatasetValidatesAndCorruptionIsCaught) {
  const gpusim::Device device(gpusim::arch_by_name("gtx580"));
  const auto workload = profiling::workload_by_name("reduce1");
  ml::Dataset ds = profiling::sweep(workload, device,
                                    {1 << 14, 1 << 15, 1 << 16});
  EXPECT_TRUE(check::validate_dataset(ds, device.arch()).empty());

  ds.mutable_column("achieved_occupancy")[1] = 1.5;
  const auto violations = check::validate_dataset(ds, device.arch());
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(has_rule(violations, "achieved_occupancy_le_1"))
      << check::to_string(violations);
  EXPECT_EQ(violations.front().row, 1);
}

TEST(CheckDataset, RepositoryValidatesOnLoad) {
  const std::string root =
      testing::TempDir() + "/bf_check_repo_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const gpusim::Device device(gpusim::arch_by_name("k20m"));
  const auto workload = profiling::workload_by_name("vecAdd");
  ml::Dataset ds =
      profiling::sweep(workload, device, {1 << 14, 1 << 15});

  const profiling::RunRepository repo(root);
  repo.save("vecAdd", "k20m", ds);
  EXPECT_NO_THROW(repo.load("vecAdd", "k20m"));

  // Corrupt the stored sweep: DRAM throughput above the K20m's bandwidth.
  ml::Dataset bad = ds;
  bad.mutable_column("dram_read_throughput")[0] = 1e5;
  repo.save("vecAdd", "k20m", bad);
  EXPECT_THROW(repo.load("vecAdd", "k20m"), bf::Error);

  // Unknown arch keys and disabled validation both load as-is.
  repo.save("vecAdd", "futuregpu", bad);
  EXPECT_NO_THROW(repo.load("vecAdd", "futuregpu"));
  profiling::RepositoryOptions lax;
  lax.validate_on_load = false;
  const profiling::RunRepository unchecked(root, lax);
  EXPECT_NO_THROW(unchecked.load("vecAdd", "k20m"));
}

}  // namespace
}  // namespace bf
