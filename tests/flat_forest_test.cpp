// Bit-identity suite for the flat inference engine: every prediction a
// FlatForest makes — single row, batched, interval, NaN-repaired,
// fault-corrupted, reloaded from disk — must equal the pointer forest's
// output EXACTLY (EXPECT_EQ on doubles, not a tolerance). The freeze is
// a pure re-layout; any drift means the stepping kernel or the tree-order
// accumulation diverged from RandomForest.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "core/model.hpp"
#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"

namespace bf::ml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

struct Synthetic {
  linalg::Matrix x;
  std::vector<double> y;
};

/// Interacting nonlinear response over four features so trees actually
/// split on everything and leaves carry distinct values.
Synthetic make_synthetic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic s{linalg::Matrix(n, 4), std::vector<double>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) s.x(i, j) = rng.uniform(-5, 5);
    s.y[i] = 3.0 * s.x(i, 0) - 2.0 * s.x(i, 1) * s.x(i, 2) +
             std::sin(s.x(i, 3)) + rng.normal(0.0, 0.3);
  }
  return s;
}

const std::vector<std::string> kNames = {"a", "b", "c", "d"};

RandomForest fit_forest(std::uint64_t seed, std::size_t n_trees = 60) {
  const auto data = make_synthetic(200, seed);
  ForestParams p;
  p.n_trees = n_trees;
  p.seed = seed * 31 + 7;
  p.importance = false;
  RandomForest rf;
  rf.fit(data.x, data.y, kNames, p);
  return rf;
}

/// Probe rows spanning in-range, far-out-of-range and NaN cells.
linalg::Matrix make_probes(std::uint64_t seed, std::size_t n = 64) {
  Rng rng(seed);
  linalg::Matrix x(n, 4);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.uniform(-8, 8);
    if (i % 7 == 3) x(i, i % 4) = kNaN;                 // dropped counter
    if (i % 11 == 5) x(i, 1) = rng.uniform(1e6, 1e7);  // extrapolation
  }
  return x;
}

TEST(FlatForest, LayoutNamesRoundTrip) {
  EXPECT_STREQ(tree_layout_name(TreeLayout::kDepthFirst), "df");
  EXPECT_STREQ(tree_layout_name(TreeLayout::kBreadthFirst), "bf");
  EXPECT_EQ(tree_layout_from_name("df"), TreeLayout::kDepthFirst);
  EXPECT_EQ(tree_layout_from_name("bf"), TreeLayout::kBreadthFirst);
  EXPECT_THROW(tree_layout_from_name("zz"), Error);
}

TEST(FlatForest, FreezePreservesShape) {
  const auto rf = fit_forest(1);
  for (const auto layout : {TreeLayout::kDepthFirst,
                            TreeLayout::kBreadthFirst}) {
    const auto flat = FlatForest::freeze(rf, layout);
    EXPECT_TRUE(flat.fitted());
    EXPECT_EQ(flat.layout(), layout);
    EXPECT_EQ(flat.n_trees(), 60u);
    EXPECT_EQ(flat.feature_names(), kNames);
    std::size_t pointer_nodes = 0;
    for (std::size_t t = 0; t < rf.n_trees(); ++t) {
      pointer_nodes += rf.tree(t).node_count();
    }
    EXPECT_EQ(flat.node_count(), pointer_nodes);
  }
}

TEST(FlatForest, PredictRowBitIdenticalBothLayouts) {
  const auto rf = fit_forest(2);
  const auto probes = make_probes(12);
  for (const auto layout : {TreeLayout::kDepthFirst,
                            TreeLayout::kBreadthFirst}) {
    const auto flat = FlatForest::freeze(rf, layout);
    ForestScratch scratch;
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      const double want = rf.predict_row(probes.row_ptr(i));
      EXPECT_EQ(flat.predict_row(probes.row_ptr(i), scratch), want);
      EXPECT_EQ(flat.predict_row(probes.row_ptr(i)), want);
    }
  }
}

TEST(FlatForest, BatchedPredictMatchesRowPath) {
  const auto rf = fit_forest(3);
  const auto probes = make_probes(13, 37);  // odd count: exercises the
                                            // partial trailing block
  const auto want = rf.predict(probes);
  for (const auto layout : {TreeLayout::kDepthFirst,
                            TreeLayout::kBreadthFirst}) {
    const auto flat = FlatForest::freeze(rf, layout);
    const auto got = flat.predict(probes);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "row " << i;
    }
  }
}

TEST(FlatForest, IntervalsBitIdenticalAcrossAlphas) {
  const auto rf = fit_forest(4);
  const auto probes = make_probes(14, 16);
  const auto flat = FlatForest::freeze(rf, TreeLayout::kBreadthFirst);
  ForestScratch scratch;
  for (const double alpha : {0.02, 0.1, 0.5}) {
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      const auto want = rf.predict_interval(probes.row_ptr(i), alpha);
      const auto got = flat.predict_interval(probes.row_ptr(i), alpha,
                                             scratch);
      EXPECT_EQ(got.mean, want.mean);
      EXPECT_EQ(got.lo, want.lo);
      EXPECT_EQ(got.hi, want.hi);
    }
    const auto want_batch = rf.predict_intervals(probes, alpha);
    const auto got_batch = flat.predict_intervals(probes, alpha);
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (std::size_t i = 0; i < want_batch.size(); ++i) {
      EXPECT_EQ(got_batch[i].mean, want_batch[i].mean);
      EXPECT_EQ(got_batch[i].lo, want_batch[i].lo);
      EXPECT_EQ(got_batch[i].hi, want_batch[i].hi);
    }
  }
}

TEST(FlatForest, NanRowRepairedWithSameMedians) {
  const auto rf = fit_forest(5);
  const auto flat = FlatForest::freeze(rf);
  const double all_nan[4] = {kNaN, kNaN, kNaN, kNaN};
  EXPECT_EQ(flat.predict_row(all_nan), rf.predict_row(all_nan));
  const double inf_row[4] = {1.0, std::numeric_limits<double>::infinity(),
                             -2.0, -std::numeric_limits<double>::infinity()};
  EXPECT_EQ(flat.predict_row(inf_row), rf.predict_row(inf_row));
}

TEST(FlatForest, NanFaultCorruptsBothPathsIdentically) {
  const auto rf = fit_forest(6);
  const auto flat = FlatForest::freeze(rf);
  const double row[4] = {0.5, -1.5, 2.5, -3.5};
  // The fault fires once per predict call on its own deterministic RNG
  // stream; at rate 1.0 both engines see the identical corruption.
  fault::arm(fault::points::kForestNanFeature, 1.0);
  const double want = rf.predict_row(row);
  const double got = flat.predict_row(row);
  fault::reset();
  EXPECT_EQ(got, want);
  // The corrupted prediction must differ from the clean one (the fault
  // really replaced feature 0), and both clean paths must still agree.
  EXPECT_NE(flat.predict_row(row), got);
  EXPECT_EQ(flat.predict_row(row), rf.predict_row(row));
}

TEST(FlatForest, SaveLoadRoundTripExact) {
  const auto rf = fit_forest(7);
  const auto probes = make_probes(17, 24);
  for (const auto layout : {TreeLayout::kDepthFirst,
                            TreeLayout::kBreadthFirst}) {
    const auto flat = FlatForest::freeze(rf, layout);
    std::stringstream ss;
    flat.save(ss);
    const auto loaded = FlatForest::load(ss);
    EXPECT_EQ(loaded.layout(), layout);
    EXPECT_EQ(loaded.n_trees(), flat.n_trees());
    EXPECT_EQ(loaded.node_count(), flat.node_count());
    EXPECT_EQ(loaded.feature_names(), flat.feature_names());
    EXPECT_EQ(loaded.feature_medians(), flat.feature_medians());
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      EXPECT_EQ(loaded.predict_row(probes.row_ptr(i)),
                flat.predict_row(probes.row_ptr(i)));
    }
  }
}

TEST(FlatForest, LoadRejectsGarbage) {
  std::stringstream bad_magic("not_a_forest 1\n");
  EXPECT_THROW(FlatForest::load(bad_magic), Error);
  const auto flat = FlatForest::freeze(fit_forest(8, 4));
  std::stringstream ss;
  flat.save(ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // truncation
  std::stringstream cut(text);
  EXPECT_THROW(FlatForest::load(cut), Error);
}

TEST(FlatForest, PropertyRandomForestsBitIdentical) {
  Rng rng(99);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const auto data = make_synthetic(40 + 10 * (trial % 5), 100 + trial);
    ForestParams p;
    p.n_trees = 1 + static_cast<std::size_t>(rng.uniform(0, 24));
    p.max_depth = static_cast<std::size_t>(rng.uniform(0, 6));  // 0 = deep
    p.min_node_size = 1 + static_cast<std::size_t>(rng.uniform(0, 7));
    p.mtry = static_cast<std::size_t>(rng.uniform(0, 4));
    p.importance = false;
    p.seed = 1000 + trial;
    RandomForest rf;
    rf.fit(data.x, data.y, kNames, p);
    const auto probes = make_probes(200 + trial, 16);
    const auto df = FlatForest::freeze(rf, TreeLayout::kDepthFirst);
    const auto bf = FlatForest::freeze(rf, TreeLayout::kBreadthFirst);
    ForestScratch scratch;
    for (std::size_t i = 0; i < probes.rows(); ++i) {
      const double want = rf.predict_row(probes.row_ptr(i));
      EXPECT_EQ(df.predict_row(probes.row_ptr(i), scratch), want)
          << "trial " << trial << " row " << i;
      EXPECT_EQ(bf.predict_row(probes.row_ptr(i), scratch), want)
          << "trial " << trial << " row " << i;
      const auto want_iv = rf.predict_interval(probes.row_ptr(i), 0.1);
      const auto got_iv = bf.predict_interval(probes.row_ptr(i), 0.1,
                                              scratch);
      EXPECT_EQ(got_iv.lo, want_iv.lo);
      EXPECT_EQ(got_iv.hi, want_iv.hi);
    }
  }
}

// ---- model-level round trips (the .bfmodel payload) ----

ml::Dataset model_sweep() {
  const auto data = make_synthetic(120, 55);
  ml::Dataset ds;
  std::vector<std::vector<double>> cols(4);
  std::vector<double> time(data.y);
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) cols[j].push_back(data.x(i, j));
    time[i] = std::abs(time[i]) + 0.5;  // times are positive
  }
  for (std::size_t j = 0; j < 4; ++j) ds.add_column(kNames[j], cols[j]);
  ds.add_column("time_ms", time);
  return ds;
}

core::ModelOptions fast_model() {
  core::ModelOptions opt;
  opt.forest.n_trees = 50;
  opt.forest.importance = false;
  return opt;
}

TEST(FlatForestModel, V2SaveLoadPredictsIdentically) {
  const auto model = core::BlackForestModel::fit(model_sweep(), fast_model());
  std::stringstream ss;
  model.save(ss);
  EXPECT_EQ(ss.str().substr(0, 10), "bf_model 2");
  const auto loaded = core::BlackForestModel::load(ss);
  EXPECT_FALSE(loaded.forest().fitted());  // v2 carries the flat form only
  EXPECT_TRUE(loaded.flat().fitted());
  const auto probe = model_sweep().drop_columns({"time_ms"});
  const auto want = model.predict(probe);
  const auto got = loaded.predict(probe);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  EXPECT_EQ(loaded.test_mse(), model.test_mse());
  EXPECT_EQ(loaded.test_explained_variance(),
            model.test_explained_variance());
}

TEST(FlatForestModel, V1StreamFreezesOnLoad) {
  const auto model = core::BlackForestModel::fit(model_sweep(), fast_model());
  // Hand-compose the pre-flat record: header, predictors, statistics and
  // the full pointer-forest dump — exactly what a version-1 exporter
  // wrote. Loading it must freeze on the spot and predict identically.
  std::stringstream v1;
  v1.precision(17);
  v1 << "bf_model 1\n";
  v1 << model.predictors().size();
  for (const auto& p : model.predictors()) v1 << ' ' << p;
  v1 << "\n";
  v1 << model.test_mse() << ' ' << model.test_explained_variance() << "\n";
  model.forest().save(v1);
  const auto loaded = core::BlackForestModel::load(v1);
  EXPECT_TRUE(loaded.forest().fitted());  // v1 keeps the pointer trees
  EXPECT_TRUE(loaded.flat().fitted());
  const auto probe = model_sweep().drop_columns({"time_ms"});
  const auto want = model.predict(probe);
  const auto got = loaded.predict(probe);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(FlatForestModel, GuardedIntervalPathMatchesPointerForest) {
  const auto model = core::BlackForestModel::fit(model_sweep(), fast_model());
  const auto probes = make_probes(300, 12);
  ForestScratch scratch;
  for (std::size_t i = 0; i < probes.rows(); ++i) {
    // The exact call the guarded predictor hot path makes...
    const auto got = model.predict_interval(probes.row_ptr(i), 0.1, scratch);
    // ...against the training-side pointer forest it froze from.
    const auto want = model.forest().predict_interval(probes.row_ptr(i), 0.1);
    EXPECT_EQ(got.mean, want.mean);
    EXPECT_EQ(got.lo, want.lo);
    EXPECT_EQ(got.hi, want.hi);
  }
}

TEST(FlatForestModel, RefreezeIsLayoutInvariant) {
  auto model = core::BlackForestModel::fit(model_sweep(), fast_model());
  const auto probe = model_sweep().drop_columns({"time_ms"});
  const auto want = model.predict(probe);
  model.refreeze(TreeLayout::kBreadthFirst);
  EXPECT_EQ(model.flat().layout(), TreeLayout::kBreadthFirst);
  const auto got = model.predict(probe);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

}  // namespace
}  // namespace bf::ml
