// Tests for the BlackForest core: model fitting/validation, PCA
// refinement, counter models, problem/hardware scaling predictors,
// bottleneck analysis and the end-to-end pipeline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "core/bottleneck.hpp"
#include "core/counter_models.hpp"
#include "core/model.hpp"
#include "core/pca_refine.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "profiling/workloads.hpp"

namespace bf::core {
namespace {

using gpusim::Device;
using profiling::kSizeColumn;
using profiling::kTimeColumn;

/// Small cached sweeps (collected once per process) so the many tests
/// below stay fast.
const ml::Dataset& reduce1_sweep() {
  static const ml::Dataset ds = [] {
    const Device dev(gpusim::gtx580());
    return profiling::sweep(profiling::reduce_workload(1), dev,
                            profiling::log2_sizes(1 << 13, 1 << 20, 40, 256));
  }();
  return ds;
}

const ml::Dataset& reduce2_sweep() {
  static const ml::Dataset ds = [] {
    const Device dev(gpusim::gtx580());
    return profiling::sweep(profiling::reduce_workload(2), dev,
                            profiling::log2_sizes(1 << 13, 1 << 20, 40, 256));
  }();
  return ds;
}

const ml::Dataset& matmul_sweep() {
  static const ml::Dataset ds = [] {
    const Device dev(gpusim::gtx580());
    return profiling::sweep(profiling::matmul_workload(), dev,
                            profiling::log2_sizes(32, 512, 18, 16));
  }();
  return ds;
}

ModelOptions fast_model() {
  ModelOptions opt;
  opt.forest.n_trees = 120;
  return opt;
}

// ---- BlackForestModel ----

TEST(BlackForestModel, FitsAndValidates) {
  const auto model = BlackForestModel::fit(reduce1_sweep(), fast_model());
  EXPECT_GT(model.pct_var_explained(), 70.0);
  EXPECT_GT(model.test_explained_variance(), 0.5);
  EXPECT_GT(model.forest().n_trees(), 0u);
  // time_ms must not leak into the predictors.
  for (const auto& p : model.predictors()) {
    EXPECT_NE(p, kTimeColumn);
  }
  EXPECT_EQ(model.train_data().num_rows() + model.test_data().num_rows(),
            reduce1_sweep().num_rows());
}

TEST(BlackForestModel, ConstantColumnsDropped) {
  ml::Dataset ds = reduce2_sweep();
  // reduce2 has zero bank conflicts everywhere: the counter must be
  // dropped ("vanishes from the analysis", paper §5.3).
  const auto model = BlackForestModel::fit(ds, fast_model());
  const auto& preds = model.predictors();
  EXPECT_EQ(std::find(preds.begin(), preds.end(), "l1_shared_bank_conflict"),
            preds.end());
}

TEST(BlackForestModel, ExcludeOptionRespected) {
  ModelOptions opt = fast_model();
  opt.exclude = {"power_avg_w", "ipc"};
  const auto model = BlackForestModel::fit(reduce1_sweep(), opt);
  for (const auto& p : model.predictors()) {
    EXPECT_NE(p, "power_avg_w");
    EXPECT_NE(p, "ipc");
  }
}

TEST(BlackForestModel, RefitWithSubsetKeepsPower) {
  const auto model = BlackForestModel::fit(reduce1_sweep(), fast_model());
  const auto top = model.top_variables(6);
  const auto reduced = model.refit_with(top);
  EXPECT_EQ(reduced.predictors().size(), 6u);
  // The paper's stage-3 check: a handful of variables retains most of
  // the predictive power.
  EXPECT_GT(reduced.pct_var_explained(),
            0.8 * model.pct_var_explained());
}

TEST(BlackForestModel, PredictOnNamedColumns) {
  const auto model = BlackForestModel::fit(reduce1_sweep(), fast_model());
  const auto pred = model.predict(model.test_data());
  EXPECT_EQ(pred.size(), model.test_data().num_rows());
  for (const double v : pred) EXPECT_GT(v, 0.0);
}

TEST(BlackForestModel, MissingResponseRejected) {
  ml::Dataset ds;
  ds.add_column("x", {1, 2, 3});
  EXPECT_THROW(BlackForestModel::fit(ds, fast_model()), Error);
}

// ---- PCA refinement ----

TEST(PcaRefine, FacetClassification) {
  EXPECT_EQ(counter_facet("gld_request"), Facet::kMemoryIntensity);
  EXPECT_EQ(counter_facet("ipc"), Facet::kParallelism);
  EXPECT_EQ(counter_facet("warp_execution_efficiency"),
            Facet::kSimdEfficiency);
  EXPECT_EQ(counter_facet("l2_read_throughput"), Facet::kMemoryThroughput);
  EXPECT_EQ(counter_facet("size"), Facet::kProblem);
  EXPECT_EQ(counter_facet("mystery_counter"), Facet::kOther);
}

TEST(PcaRefine, ComponentsCoverVarianceTarget) {
  const auto refinement = pca_refine(reduce1_sweep());
  EXPECT_GE(refinement.components.size(), 1u);
  EXPECT_LE(refinement.components.size(), 6u);
  // The paper reports >= 96-97% for the reduce kernels with 4 PCs; we
  // only require the configured cap to land in a sane band.
  EXPECT_GT(refinement.variance_covered, 0.8);
  for (const auto& comp : refinement.components) {
    EXPECT_FALSE(comp.label.empty());
    EXPECT_GE(comp.variance_share, 0.0);
  }
  // Shares sorted descending (PC1 is the biggest).
  for (std::size_t i = 1; i < refinement.components.size(); ++i) {
    EXPECT_GE(refinement.components[i - 1].variance_share,
              refinement.components[i].variance_share - 1e-9);
  }
}

TEST(PcaRefine, StrongLoadingsNonEmptyForLeadComponent) {
  const auto refinement = pca_refine(reduce1_sweep());
  EXPECT_FALSE(refinement.components.front().loadings.empty());
}

TEST(PcaRefine, ExclusionsHonoured) {
  PcaRefineOptions opt;
  opt.exclude = {kSizeColumn};
  const auto refinement = pca_refine(reduce1_sweep(), opt);
  for (const auto& comp : refinement.components) {
    for (const auto& [name, _] : comp.loadings) {
      EXPECT_NE(name, kSizeColumn);
    }
  }
}

// ---- counter models ----

TEST(CounterModels, PowerLawCounterRecovered) {
  // Synthetic counter = 3 * size^2 (exact power law).
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> counter;
  for (int i = 4; i <= 12; ++i) {
    const double s = std::exp2(i);
    sizes.push_back(s);
    counter.push_back(3.0 * s * s);
  }
  ds.add_column("size", sizes);
  ds.add_column("c", counter);
  const auto models = CounterModels::fit(ds, {"c"});
  ASSERT_EQ(models.info().size(), 1u);
  EXPECT_GT(models.info()[0].r2, 0.999);
  // Extrapolate one octave: must stay within a few percent.
  const auto pred = models.predict({std::exp2(13)});
  const double expected = 3.0 * std::exp2(26);
  EXPECT_NEAR(pred[0].second / expected, 1.0, 0.05);
}

TEST(CounterModels, SaturatingCounterViaMars) {
  // A throughput-style counter that rises then saturates.
  ml::Dataset ds;
  std::vector<double> sizes;
  std::vector<double> counter;
  for (int i = 0; i < 30; ++i) {
    const double s = 64.0 * (i + 1);
    sizes.push_back(s);
    counter.push_back(150.0 * s / (s + 500.0));
  }
  ds.add_column("size", sizes);
  ds.add_column("tp", counter);
  const auto models = CounterModels::fit(ds, {"tp"});
  EXPECT_GT(models.info()[0].r2, 0.98);
}

TEST(CounterModels, PredictFeaturesSchema) {
  const auto& ds = matmul_sweep();
  const auto models =
      CounterModels::fit(ds, {"gst_request", "gld_request", kSizeColumn});
  const auto features = models.predict_features({64, 128});
  EXPECT_EQ(features.num_rows(), 2u);
  EXPECT_TRUE(features.has_column(kSizeColumn));
  EXPECT_TRUE(features.has_column("gst_request"));
  // gst_request for MM is (n/16)^2 blocks * 8 warps: quadratic growth.
  EXPECT_GT(features.at(1, "gst_request"),
            3.0 * features.at(0, "gst_request"));
}

TEST(CounterModels, InfoQualityOnRealSweep) {
  const auto& ds = matmul_sweep();
  const auto models = CounterModels::fit(
      ds, {"gld_request", "gst_request", "inst_executed"});
  EXPECT_GT(models.average_r2(), 0.95);
  for (const auto& info : models.info()) {
    EXPECT_GE(info.residual_deviance, 0.0);
  }
}

TEST(CounterModels, EmptyInputsRejected) {
  ml::Dataset ds;
  ds.add_column("size", {1, 2, 3, 4});
  ds.add_column("c", {1, 2, 3, 4});
  EXPECT_THROW(CounterModels::fit(ds, {}), Error);
  CounterModelOptions opt;
  opt.inputs = {};
  EXPECT_THROW(CounterModels::fit(ds, {"c"}, opt), Error);
}

// ---- problem scaling ----

TEST(ProblemScaling, MatMulPredictionsTrackMeasurements) {
  ProblemScalingOptions opt;
  opt.model.forest.n_trees = 150;
  opt.model.exclude = {"power_avg_w", "flop_sp_efficiency"};
  const auto pred = ProblemScalingPredictor::build(matmul_sweep(), opt);

  const Device dev(gpusim::gtx580());
  profiling::Profiler prof;
  const std::vector<double> sizes{96, 192, 384};
  std::vector<double> measured;
  for (const double s : sizes) {
    measured.push_back(
        prof.profile(profiling::matmul_workload(), dev, s).time_ms);
  }
  const auto series = pred.validate(sizes, measured);
  EXPECT_GT(series.explained_variance, 0.9);
  EXPECT_LT(series.median_abs_pct_error, 60.0);
}

TEST(ProblemScaling, RetainedSetIncludesSize) {
  const auto pred = ProblemScalingPredictor::build(matmul_sweep());
  const auto& retained = pred.retained();
  EXPECT_NE(std::find(retained.begin(), retained.end(), kSizeColumn),
            retained.end());
  EXPECT_LE(retained.size(), 7u);  // top_k + size
}

TEST(ProblemScaling, ReducedModelKeepsPower) {
  const auto pred = ProblemScalingPredictor::build(matmul_sweep());
  EXPECT_GT(pred.reduced_model().pct_var_explained(),
            0.7 * pred.full_model().pct_var_explained());
}

// ---- hardware scaling ----

const ml::Dataset& nw_sweep(const gpusim::ArchSpec& arch) {
  static std::map<std::string, ml::Dataset> cache;
  const auto it = cache.find(arch.name);
  if (it != cache.end()) return it->second;
  const Device dev(arch);
  profiling::SweepOptions opt;
  opt.machine_characteristics = true;
  opt.profiler.seed = arch.name == "gtx580" ? 10 : 20;
  return cache
      .emplace(arch.name,
               profiling::sweep(profiling::nw_workload(), dev,
                                profiling::linear_sizes(64, 1536, 64), opt))
      .first->second;
}

TEST(HardwareScaling, ImportanceSimilarityBounds) {
  const auto a = BlackForestModel::fit(nw_sweep(gpusim::gtx580()),
                                       fast_model());
  EXPECT_DOUBLE_EQ(
      HardwareScalingPredictor::importance_similarity(a, a, 5), 1.0);
}

TEST(HardwareScaling, NwCrossGenerationUsesMixedVariables) {
  HardwareScalingOptions opt;
  opt.model.forest.n_trees = 150;
  const auto result = HardwareScalingPredictor::predict(
      nw_sweep(gpusim::gtx580()), nw_sweep(gpusim::kepler_k20m()), opt);
  // Fermi's top set contains cache counters Kepler doesn't care about:
  // the similarity test must trigger the paper's workaround.
  EXPECT_LT(result.similarity, 0.9);
  EXPECT_FALSE(result.source_top.empty());
  EXPECT_FALSE(result.target_top.empty());
  EXPECT_FALSE(result.variables.empty());
  // Predictions exist for every target test row and are positive.
  EXPECT_FALSE(result.series.predicted_ms.empty());
  for (const double v : result.series.predicted_ms) EXPECT_GT(v, 0.0);
  // Shape claim (Fig 8c): usable but imperfect accuracy.
  EXPECT_GT(result.series.explained_variance, 0.3);
}

TEST(HardwareScaling, MixedVariablesRestrictedToCommonCounters) {
  HardwareScalingOptions opt;
  opt.model.forest.n_trees = 100;
  opt.similarity_threshold = 1.01;  // force the mixed path
  const auto result = HardwareScalingPredictor::predict(
      nw_sweep(gpusim::gtx580()), nw_sweep(gpusim::kepler_k20m()), opt);
  EXPECT_TRUE(result.used_mixed_variables);
  for (const auto& v : result.variables) {
    EXPECT_NE(v, "l1_shared_bank_conflict");
    EXPECT_NE(v, "shared_load_replay");
    EXPECT_NE(v, "shared_store_replay");
  }
}

TEST(HardwareScaling, RequiresMachineCharacteristics) {
  // Sweeps without Table 2 columns must be rejected loudly.
  const Device dev(gpusim::gtx580());
  const auto plain = profiling::sweep(
      profiling::vecadd_workload(), dev, {1 << 14, 1 << 15, 1 << 16});
  EXPECT_THROW(
      HardwareScalingPredictor::predict(plain, plain, {}), Error);
}

// ---- bottleneck analysis ----

TEST(Bottleneck, PatternClassification) {
  EXPECT_EQ(classify_counter("l1_shared_bank_conflict"),
            Pattern::kSharedBankConflicts);
  EXPECT_EQ(classify_counter("l1_global_load_miss"),
            Pattern::kUncoalescedAccess);
  EXPECT_EQ(classify_counter("divergent_branch"),
            Pattern::kBranchDivergence);
  EXPECT_EQ(classify_counter("achieved_occupancy"), Pattern::kLowOccupancy);
  EXPECT_EQ(classify_counter("dram_read_throughput"),
            Pattern::kMemoryBandwidth);
  EXPECT_EQ(classify_counter("size"), Pattern::kProblemScale);
  EXPECT_EQ(classify_counter("unknown_thing"), Pattern::kUnclassified);
}

TEST(Bottleneck, EveryPatternHasNameAndRemedy) {
  for (int p = 0; p <= static_cast<int>(Pattern::kUnclassified); ++p) {
    EXPECT_GT(std::string(pattern_name(static_cast<Pattern>(p))).size(), 3u);
    EXPECT_GT(std::string(pattern_remedy(static_cast<Pattern>(p))).size(),
              10u);
  }
}

TEST(Bottleneck, Reduce1ReportFlagsConflictRelatedCounters) {
  const auto model = BlackForestModel::fit(reduce1_sweep(), fast_model());
  const auto report =
      analyze_bottlenecks(model, "reduce1", "gtx580", {});
  EXPECT_FALSE(report.findings.empty());
  EXPECT_FALSE(report.ranked_patterns.empty());
  // reduce1's conflict machinery must surface somewhere in the findings'
  // pattern mix (via the shared_* counters or the conflict counter).
  bool has_shared = false;
  for (const auto& [pattern, mass] : report.ranked_patterns) {
    (void)mass;
    if (pattern == Pattern::kSharedBankConflicts) has_shared = true;
  }
  EXPECT_TRUE(has_shared);
  const std::string text = to_text(report);
  EXPECT_NE(text.find("reduce1"), std::string::npos);
  EXPECT_NE(text.find("%IncMSE"), std::string::npos);
}

TEST(Bottleneck, FindingsSortedByImportance) {
  const auto model = BlackForestModel::fit(reduce1_sweep(), fast_model());
  const auto report = analyze_bottlenecks(model, "r", "a", {});
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_GE(report.findings[i - 1].importance,
              report.findings[i].importance);
  }
}

// ---- pipeline ----

TEST(Pipeline, EndToEndWithRepositoryCache) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("bf_pipe_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  PipelineConfig cfg;
  cfg.workload = profiling::reduce_workload(2);
  cfg.arch = gpusim::gtx580();
  cfg.sizes = profiling::log2_sizes(1 << 13, 1 << 18, 25, 256);
  cfg.model.forest.n_trees = 100;
  cfg.repository_root = root.string();

  const auto first = run_analysis(cfg);
  EXPECT_GT(first.data.num_rows(), 20u);
  EXPECT_GT(first.model.pct_var_explained(), 50.0);
  EXPECT_FALSE(first.report.findings.empty());
  EXPECT_GE(first.pca.components.size(), 1u);

  // Second run loads from the repository: identical data.
  const auto second = run_analysis(cfg);
  EXPECT_EQ(second.data.num_rows(), first.data.num_rows());
  EXPECT_DOUBLE_EQ(second.data.at(0, kTimeColumn),
                   first.data.at(0, kTimeColumn));
  std::filesystem::remove_all(root);
}

TEST(Pipeline, EmptySizesRejected) {
  PipelineConfig cfg;
  cfg.workload = profiling::vecadd_workload();
  cfg.arch = gpusim::gtx580();
  EXPECT_THROW(run_analysis(cfg), Error);
}

}  // namespace
}  // namespace bf::core
