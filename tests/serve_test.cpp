// The serving layer: .bfmodel artifact bundles (round-trip bit
// identity, corruption quarantine), the LRU + single-flight model
// registry, and the NDJSON request broker.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "gpusim/arch.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"
#include "serve/artifact.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace bf {
namespace {

// One small trained predictor shared by every test in this binary: the
// serving layer only reads it, and training dominates the runtime.
const core::ProblemScalingPredictor& trained_predictor() {
  static const core::ProblemScalingPredictor p = [] {
    const gpusim::Device dev(gpusim::arch_by_name("gtx580"));
    const ml::Dataset sweep = profiling::sweep(
        profiling::workload_by_name("reduce1"), dev,
        profiling::log2_sizes(1 << 14, 1 << 22, 12, 256));
    core::ProblemScalingOptions pso;
    pso.model.forest.n_trees = 60;
    pso.arch = gpusim::arch_by_name("gtx580");
    return core::ProblemScalingPredictor::build(sweep, pso);
  }();
  return p;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bf_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string bundle_path(const std::string& name) const {
    return (dir_ / (name + serve::kBundleSuffix)).string();
  }

  // Push a bundle's mtime forward a whole second. Staleness detection
  // compares stat snapshots, and a rewrite landing in the same kernel
  // timestamp granule as the original (easy at test speed, impossible at
  // deployment speed) would otherwise be invisible to the watcher.
  void touch_future(const std::string& name) const {
    const auto path = std::filesystem::path(bundle_path(name));
    std::filesystem::last_write_time(
        path, std::filesystem::last_write_time(path) + std::chrono::seconds(1));
  }

  void export_named(const std::string& name) const {
    serve::export_model(bundle_path(name), name, "reduce1", "gtx580", 12,
                        trained_predictor());
  }

  std::filesystem::path dir_;
};

// ---- artifact bundles ----

TEST_F(ServeTest, BundleRoundTripIsBitIdentical) {
  export_named("reduce1");
  const serve::ModelBundle loaded = serve::load_bundle(bundle_path("reduce1"));

  const auto& original = trained_predictor();
  // In-hull, boundary and extrapolated queries: the reloaded predictor
  // must reproduce value, interval and grade bit for bit.
  for (const double size : {20000.0, 65536.0, 262144.0, 4194304.0,
                            16777216.0}) {
    EXPECT_EQ(original.predict_time(size),
              loaded.predictor.predict_time(size));
    const auto a = original.predict_guarded(size);
    const auto b = loaded.predictor.predict_guarded(size);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.raw_value, b.raw_value);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.grade, b.grade);
    EXPECT_EQ(a.extrapolated, b.extrapolated);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.clamps, b.clamps);
  }
}

TEST_F(ServeTest, BundleMetaSurvivesRoundTrip) {
  export_named("reduce1");
  const serve::ModelBundle loaded = serve::load_bundle(bundle_path("reduce1"));
  EXPECT_EQ(loaded.meta.name, "reduce1");
  EXPECT_EQ(loaded.meta.workload, "reduce1");
  EXPECT_EQ(loaded.meta.arch, "gtx580");
  EXPECT_EQ(loaded.meta.trained_rows, 12u);
  // Provenance carries the build identity of the exporter.
  EXPECT_NE(loaded.meta.provenance.find("blackforest"), std::string::npos);
  EXPECT_EQ(loaded.meta.schema, trained_predictor().retained());
}

TEST_F(ServeTest, CorruptBundleIsQuarantined) {
  export_named("reduce1");
  const std::string path = bundle_path("reduce1");
  // Flip one payload byte on disk — the checksum must catch it.
  std::string content = *read_file(path);
  content[content.size() - 10] ^= 0x04;
  std::ofstream(path, std::ios::binary) << content;

  EXPECT_THROW(serve::load_bundle(path), Error);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
}

TEST_F(ServeTest, BadMagicAndFutureVersionAreRejected) {
  EXPECT_THROW(serve::bundle_from_string("bogus 1\n", "t"), Error);
  EXPECT_THROW(serve::bundle_from_string("bfmodel 2\nbytes 0\n"
                                         "checksum fnv1a64 cbf29ce484222325\n",
                                         "t"),
               Error);
  EXPECT_THROW(serve::bundle_from_string("", "t"), Error);
}

TEST_F(ServeTest, TruncatedBundleIsRejected) {
  export_named("reduce1");
  const std::string content = *read_file(bundle_path("reduce1"));
  const std::string truncated = content.substr(0, content.size() / 2);
  EXPECT_THROW(serve::bundle_from_string(truncated, "t"), Error);
}

TEST_F(ServeTest, MissingBundleIsNotQuarantined) {
  const std::string path = bundle_path("ghost");
  EXPECT_THROW(serve::load_bundle(path), Error);
  EXPECT_FALSE(std::filesystem::exists(path + ".quarantined"));
}

// ---- model registry ----

TEST_F(ServeTest, RegistryHitsMissesAndEviction) {
  export_named("a");
  export_named("b");
  export_named("c");
  serve::ModelRegistry registry(dir_.string(), 2);

  const auto a1 = registry.get("a");
  const auto a2 = registry.get("a");
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1.get(), a2.get());  // resident: same object, no reload
  registry.get("b");
  EXPECT_EQ(registry.stats().loads, 2u);
  EXPECT_EQ(registry.stats().evictions, 0u);

  // Capacity 2: loading "c" evicts the least recently used ("a").
  registry.get("c");
  EXPECT_EQ(registry.stats().evictions, 1u);
  const auto resident = registry.resident();
  EXPECT_EQ(resident, (std::vector<std::string>{"b", "c"}));

  // An evicted bundle reloads from disk; the old shared_ptr stays valid.
  registry.get("a");
  EXPECT_EQ(registry.stats().loads, 4u);
  EXPECT_EQ(a1->bundle.meta.name, "a");
}

TEST_F(ServeTest, RegistryLRUSingleFlight) {
  export_named("a");
  export_named("b");
  serve::ModelRegistry registry(dir_.string(), 2);

  // N threads hammer two resident-capacity bundles concurrently: the
  // single-flight path must perform exactly one disk load per bundle,
  // every get must succeed, and every thread must see the same objects.
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string name = ((t + i) % 2 == 0) ? "a" : "b";
        try {
          const auto bundle = registry.get(name);
          if (bundle == nullptr || bundle->bundle.meta.name != name) {
            ++failures;
          }
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = registry.stats();
  EXPECT_EQ(stats.loads, 2u);  // exactly one load per resident bundle
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST_F(ServeTest, RegistryFailedLoadRetriesCleanly) {
  export_named("a");
  // Zero backoff: the retry straight after the failure must not be
  // fast-failed by the load-retry window.
  serve::ReloadPolicy policy;
  policy.backoff_initial_ms = 0;
  serve::ModelRegistry registry(dir_.string(), 2, policy);

  {
    fault::ScopedFaults faults("serve.cache.load_fail:1.0:1");
    EXPECT_THROW(registry.get("a"), Error);
  }
  // The failed entry was removed: the cache is consistent and the next
  // request retries the disk load and succeeds.
  EXPECT_TRUE(registry.resident().empty());
  EXPECT_EQ(registry.stats().failures, 1u);
  const auto bundle = registry.get("a");
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(bundle->bundle.meta.name, "a");
  EXPECT_EQ(registry.stats().loads, 2u);
}

// ---- hot reload, canary validation and rollback ----

TEST_F(ServeTest, ExportedBundleCarriesGoldenProbes) {
  export_named("a");
  const serve::BundleFile file = serve::load_bundle_file(bundle_path("a"));
  ASSERT_EQ(file.bundle.meta.probes.size(), 5u);
  for (const auto& probe : file.bundle.meta.probes) {
    EXPECT_GT(probe.size, 0.0);
    EXPECT_EQ(probe.predicted_ms,
              trained_predictor().predict_guarded(probe.size).value);
  }
  // The recorded probes validate bit-for-bit against the reloaded
  // predictor — the canary gate is exact-match on a healthy bundle.
  std::string why;
  EXPECT_TRUE(serve::validate_canary(file.bundle, 1e-9, &why)) << why;
}

TEST_F(ServeTest, ReloadPromotesNewGeneration) {
  export_named("a");
  serve::ModelRegistry registry(dir_.string(), 2);

  const auto gen1 = registry.get("a");
  ASSERT_NE(gen1, nullptr);
  EXPECT_EQ(gen1->generation, 1u);

  // Same bytes on disk: reload detects the identical checksum and keeps
  // the resident generation.
  const auto unchanged = registry.reload("a");
  EXPECT_EQ(unchanged.status, serve::ReloadResult::Status::kUnchanged);
  EXPECT_EQ(unchanged.generation, 1u);

  // A genuinely different bundle (distinct provenance → distinct
  // checksum) promotes atomically to generation 2.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  const auto promoted = registry.reload("a");
  EXPECT_EQ(promoted.status, serve::ReloadResult::Status::kPromoted)
      << promoted.error;
  EXPECT_EQ(promoted.generation, 2u);

  const auto gen2 = registry.get("a");
  ASSERT_NE(gen2, nullptr);
  EXPECT_EQ(gen2->generation, 2u);
  EXPECT_NE(gen2->checksum, gen1->checksum);
  // The pre-reload pin still answers from its own, untouched generation.
  EXPECT_EQ(gen1->generation, 1u);
  EXPECT_EQ(gen1->bundle.predictor.predict_time(65536),
            gen2->bundle.predictor.predict_time(65536));

  const auto stats = registry.stats();
  EXPECT_EQ(stats.reloads, 2u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);
}

TEST_F(ServeTest, FailedReloadRollsBackAndQuarantines) {
  export_named("a");
  serve::ReloadPolicy policy;
  policy.backoff_initial_ms = 0;
  serve::ModelRegistry registry(dir_.string(), 2, policy);
  const auto gen1 = registry.get("a");
  ASSERT_NE(gen1, nullptr);

  // Re-export (new checksum), then corrupt the staged file on disk: the
  // reload must keep serving generation 1 and quarantine the file.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  {
    std::string content = *read_file(bundle_path("a"));
    content[content.size() - 10] ^= 0x04;
    std::ofstream(bundle_path("a"), std::ios::binary) << content;
  }
  const auto result = registry.reload("a");
  EXPECT_EQ(result.status, serve::ReloadResult::Status::kRolledBack);
  EXPECT_EQ(result.generation, 1u);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(std::filesystem::exists(bundle_path("a") + ".quarantined"));

  // The resident model is untouched and still serves.
  const auto still = registry.get("a");
  ASSERT_NE(still, nullptr);
  EXPECT_EQ(still.get(), gen1.get());
  EXPECT_EQ(registry.stats().rollbacks, 1u);

  const auto models = registry.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].rollbacks, 1u);
  EXPECT_EQ(models[0].generation, 1u);
}

TEST_F(ServeTest, CanaryFailureRollsBackReload) {
  export_named("a");
  serve::ReloadPolicy policy;
  policy.backoff_initial_ms = 0;
  serve::ModelRegistry registry(dir_.string(), 2, policy);
  const auto gen1 = registry.get("a");
  ASSERT_NE(gen1, nullptr);

  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  {
    fault::ScopedFaults faults("serve.reload.canary_fail:1.0:1");
    const auto result = registry.reload("a");
    EXPECT_EQ(result.status, serve::ReloadResult::Status::kRolledBack);
    EXPECT_NE(result.error.find("canary"), std::string::npos);
  }
  EXPECT_TRUE(std::filesystem::exists(bundle_path("a") + ".quarantined"));
  EXPECT_EQ(registry.get("a").get(), gen1.get());
  EXPECT_EQ(registry.stats().rollbacks, 1u);

  // The quarantine consumed the bad file; a fresh export then reloads
  // cleanly and promotes.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 14,
                      trained_predictor());
  const auto result = registry.reload("a");
  EXPECT_EQ(result.status, serve::ReloadResult::Status::kPromoted)
      << result.error;
  EXPECT_EQ(result.generation, 2u);
}

TEST_F(ServeTest, FailedReloadBacksOffThenRecovers) {
  export_named("a");
  serve::ReloadPolicy policy;
  policy.backoff_initial_ms = 20;
  policy.backoff_max_ms = 40;
  serve::ModelRegistry registry(dir_.string(), 2, policy);
  ASSERT_NE(registry.get("a"), nullptr);

  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  {
    fault::ScopedFaults faults("serve.reload.canary_fail:1.0:1");
    EXPECT_EQ(registry.reload("a").status,
              serve::ReloadResult::Status::kRolledBack);
  }
  // Inside the backoff window the staleness poll declines to retry …
  EXPECT_EQ(registry.check_stale("a").status,
            serve::ReloadResult::Status::kBackoff);
  // … and once it expires the next poll retries. The canary-failed file
  // was quarantined, so re-export first.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 14,
                      trained_predictor());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto result = registry.check_stale("a");
  EXPECT_EQ(result.status, serve::ReloadResult::Status::kPromoted)
      << result.error;
}

TEST_F(ServeTest, StalenessWatchPromotesChangedBundles) {
  export_named("a");
  export_named("b");
  serve::ModelRegistry registry(dir_.string(), 4);
  ASSERT_NE(registry.get("a"), nullptr);
  ASSERT_NE(registry.get("b"), nullptr);

  // Nothing changed: the poll reports no events.
  EXPECT_TRUE(registry.poll_stale().empty());

  // Rewrite "a" with new content; the poll notices the stat change,
  // re-checksums and promotes only that model.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  touch_future("a");
  const auto events = registry.poll_stale();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, "a");
  EXPECT_EQ(events[0].second.status, serve::ReloadResult::Status::kPromoted)
      << events[0].second.error;
  const auto a = registry.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->generation, 2u);
  const auto b = registry.get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->generation, 1u);
}

TEST_F(ServeTest, PinnedModelResistsReloadAndEviction) {
  export_named("a");
  export_named("b");
  export_named("c");
  serve::ModelRegistry registry(dir_.string(), 2);
  ASSERT_NE(registry.get("a"), nullptr);
  EXPECT_TRUE(registry.pin("a"));

  // Pinned models are exempt from reload and staleness promotion.
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  EXPECT_EQ(registry.reload("a").status,
            serve::ReloadResult::Status::kPinned);
  EXPECT_EQ(registry.check_stale("a").status,
            serve::ReloadResult::Status::kPinned);

  // Capacity pressure evicts around the pin, never through it.
  registry.get("b");
  registry.get("c");
  const auto resident = registry.resident();
  EXPECT_NE(std::find(resident.begin(), resident.end(), "a"),
            resident.end());

  // Unpinning restores normal lifecycle: the stale bundle now promotes.
  EXPECT_TRUE(registry.unpin("a"));
  EXPECT_EQ(registry.reload("a").status,
            serve::ReloadResult::Status::kPromoted);
  EXPECT_FALSE(registry.pin("ghost"));  // never-seen names don't pin
}

TEST_F(ServeTest, ReloadOfNonResidentModelIsRejected) {
  export_named("a");
  serve::ModelRegistry registry(dir_.string(), 2);
  EXPECT_EQ(registry.reload("a").status,
            serve::ReloadResult::Status::kNotResident);
  ASSERT_NE(registry.get("a"), nullptr);
  EXPECT_EQ(registry.reload("a").status,
            serve::ReloadResult::Status::kUnchanged);
}

TEST_F(ServeTest, GenerationSurvivesEvictionCycles) {
  export_named("a");
  export_named("b");
  export_named("c");
  serve::ModelRegistry registry(dir_.string(), 1);

  // Evict "a" by rotating through a capacity-1 cache, then reload it:
  // the generation counter is per-name and monotonic, never reset by
  // eviction.
  EXPECT_EQ(registry.get("a")->generation, 1u);
  registry.get("b");
  registry.get("c");
  EXPECT_EQ(registry.get("a")->generation, 2u);
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 13,
                      trained_predictor());
  EXPECT_EQ(registry.reload("a").generation, 3u);
}

// The TSan-facing chaos test: readers pin generations and predict while
// a writer concurrently rewrites bundles, reloads them and forces
// eviction pressure. Every pinned generation must answer consistently;
// no read ever observes a half-swapped model.
TEST_F(ServeTest, ReloadUnderConcurrentPredictionsIsRaceFree) {
  export_named("a");
  export_named("b");
  serve::ReloadPolicy policy;
  policy.backoff_initial_ms = 0;
  serve::ModelRegistry registry(dir_.string(), 1, policy);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&registry, &stop, &failures, t] {
      const std::string name = (t % 2 == 0) ? "a" : "b";
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto pinned = registry.get(name);
          if (pinned == nullptr) {
            ++failures;
            continue;
          }
          // Two predictions through the same pin must agree even if the
          // registry promoted a new generation in between.
          const double first = pinned->bundle.predictor.predict_time(65536);
          const double again = pinned->bundle.predictor.predict_time(65536);
          if (first != again || pinned->generation == 0) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }

  // The writer alternates bundle rewrites with explicit reloads while
  // the capacity-1 cache forces constant eviction churn underneath.
  for (int round = 0; round < 20; ++round) {
    const std::string name = (round % 2 == 0) ? "a" : "b";
    serve::export_model(bundle_path(name), name, "reduce1", "gtx580",
                        static_cast<std::size_t>(20 + round),
                        trained_predictor());
    try {
      registry.reload(name);
    } catch (const std::exception&) {
      ++failures;
    }
    registry.poll_stale();
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0);
  // Deterministic tail: with the churn finished, a fresh promote cycle
  // must still work (the mid-churn reloads may all have found their
  // model evicted by the capacity-1 pressure).
  ASSERT_NE(registry.get("a"), nullptr);
  serve::export_model(bundle_path("a"), "a", "reduce1", "gtx580", 99,
                      trained_predictor());
  EXPECT_EQ(registry.reload("a").status,
            serve::ReloadResult::Status::kPromoted);
  EXPECT_GT(registry.stats().promotions, 0u);
}

// ---- the request broker ----

TEST_F(ServeTest, ServerBatchCoversHitMissErrorAndStats) {
  export_named("reduce1");
  // Plant a corrupt bundle next to the good one.
  export_named("broken");
  {
    std::string content = *read_file(bundle_path("broken"));
    content[content.size() - 10] ^= 0x04;
    std::ofstream(bundle_path("broken"), std::ios::binary) << content;
  }

  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.cache_capacity = 2;
  options.threads = 4;
  serve::Server server(options);

  const auto replies = server.handle_batch({
      R"({"model":"reduce1","size":65536,"id":1})",
      R"({"model":"reduce1","size":262144,"id":"two"})",
      R"({"model":"ghost","size":64,"id":3})",
      R"({"model":"broken","size":64,"id":4})",
      R"(this is not json)",
      R"({"cmd":"nonsense"})",
      R"({"model":"reduce1","size":-5})",
      R"({"cmd":"stats"})",
  });
  ASSERT_EQ(replies.size(), 8u);

  const auto r0 = serve::parse_json(replies[0]);
  EXPECT_TRUE(r0.find("ok")->boolean);
  EXPECT_EQ(r0.find("id")->number, 1.0);
  EXPECT_EQ(r0.find("model")->str, "reduce1");
  EXPECT_EQ(r0.find("predicted_ms")->number,
            trained_predictor().predict_guarded(65536).value);
  EXPECT_GT(r0.find("latency_us")->number, 0.0);
  const std::string grade = r0.find("grade")->str;
  EXPECT_TRUE(grade == "A" || grade == "B" || grade == "C");

  const auto r1 = serve::parse_json(replies[1]);
  EXPECT_TRUE(r1.find("ok")->boolean);
  EXPECT_EQ(r1.find("id")->str, "two");

  for (const std::size_t bad : {2u, 3u, 4u, 5u, 6u}) {
    const auto r = serve::parse_json(replies[bad]);
    EXPECT_FALSE(r.find("ok")->boolean) << replies[bad];
    EXPECT_FALSE(r.find("error")->str.empty());
  }

  // The corrupt bundle was quarantined; the cache holds only the good
  // model and the failed load is accounted for.
  EXPECT_TRUE(std::filesystem::exists(bundle_path("broken") +
                                      ".quarantined"));
  const auto stats = serve::parse_json(replies[7]);
  EXPECT_TRUE(stats.find("ok")->boolean);
  EXPECT_EQ(stats.find("failures")->number, 2.0);  // ghost + broken
  ASSERT_EQ(stats.find("resident")->array.size(), 1u);
  EXPECT_EQ(stats.find("resident")->array[0].str, "reduce1");
}

TEST_F(ServeTest, ServerReplyIsBitIdenticalToDirectPrediction) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);

  const auto reply = server.handle_line(
      R"({"model":"reduce1","size":131072})");
  const auto parsed = serve::parse_json(reply);
  const auto direct = trained_predictor().predict_guarded(131072);
  EXPECT_EQ(parsed.find("predicted_ms")->number, direct.value);
  EXPECT_EQ(parsed.find("interval_lo_ms")->number, direct.lo);
  EXPECT_EQ(parsed.find("interval_hi_ms")->number, direct.hi);
}

// ---- request framing (serve/net.hpp) ----

TEST(ServeFraming, SplitRequestsHandlesCrlfBlanksAndMissingNewline) {
  // CRLF endings, blank lines (both flavours) and a final line without
  // any newline must all frame cleanly.
  const auto lines = serve::split_requests(
      "{\"a\":1}\r\n\r\n{\"b\":2}\n\n   \n{\"c\":3}");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  EXPECT_EQ(lines[2], "   ");  // whitespace is a (malformed) request
  EXPECT_EQ(lines[3], "{\"c\":3}");

  EXPECT_TRUE(serve::split_requests("").empty());
  EXPECT_TRUE(serve::split_requests("\n\r\n\n").empty());
  EXPECT_EQ(serve::split_requests("x").size(), 1u);
}

TEST(ServeFraming, LineBufferFramesAcrossArbitraryChunkBoundaries) {
  // Feed two pipelined requests byte by byte: each completes exactly
  // when its newline arrives, independent of chunking.
  const std::string stream = "{\"a\":1}\r\n{\"b\":2}\n{\"tail\":3}";
  serve::LineBuffer buffer;
  std::vector<std::string> lines;
  for (const char ch : stream) {
    ASSERT_TRUE(buffer.append(&ch, 1, lines));
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  // EOF semantics: the unterminated tail is still a request.
  std::string tail;
  ASSERT_TRUE(buffer.take_partial(tail));
  EXPECT_EQ(tail, "{\"tail\":3}");
  EXPECT_FALSE(buffer.take_partial(tail));
}

TEST(ServeFraming, LineBufferOverflowPoisonsTheStream) {
  serve::LineBuffer buffer(8);
  std::vector<std::string> lines;
  const std::string huge(32, 'x');
  EXPECT_FALSE(buffer.append(huge.data(), huge.size(), lines));
  EXPECT_TRUE(buffer.overflowed());
  EXPECT_TRUE(lines.empty());
  // A poisoned buffer stays poisoned: no resync inside an unbounded line.
  const char nl = '\n';
  EXPECT_FALSE(buffer.append(&nl, 1, lines));
  std::string tail;
  EXPECT_FALSE(buffer.take_partial(tail));
}

// ---- structured error replies ----

TEST(ServeErrors, MakeErrorReplyShapesAreStable) {
  EXPECT_EQ(serve::make_error_reply("", "shed", "overloaded"),
            R"({"ok":false,"code":"shed","error":"overloaded"})");
  EXPECT_EQ(serve::make_error_reply("42", "timeout", "drain"),
            R"({"id":42,"ok":false,"code":"timeout","error":"drain"})");
  // Quotes in the message are escaped, never protocol-breaking.
  const auto parsed = serve::parse_json(
      serve::make_error_reply("\"x\"", "malformed", "bad \"cmd\""));
  EXPECT_EQ(parsed.find("code")->str, "malformed");
  EXPECT_EQ(parsed.find("error")->str, "bad \"cmd\"");
}

TEST_F(ServeTest, ServerRepliesCarryStableErrorCodes) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);

  const auto malformed =
      serve::parse_json(server.handle_line("this is not json"));
  EXPECT_EQ(malformed.find("code")->str, "malformed");
  const auto unknown_cmd =
      serve::parse_json(server.handle_line(R"({"cmd":"nonsense"})"));
  EXPECT_EQ(unknown_cmd.find("code")->str, "malformed");
  const auto ghost = serve::parse_json(
      server.handle_line(R"({"model":"ghost","size":64})"));
  EXPECT_EQ(ghost.find("code")->str, "model_unavailable");
}

// ---- admin verbs: reload / pin / unpin over the protocol ----

TEST_F(ServeTest, ServerAdminVerbsDriveReloadLifecycle) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  serve::Server server(options);

  // Load generation 1 and confirm predictions carry the generation.
  const auto first = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_TRUE(first.find("ok")->boolean);
  EXPECT_EQ(first.find("generation")->number, 1.0);

  // Reloading the unchanged file is a no-op.
  const auto unchanged = serve::parse_json(server.handle_line(
      R"({"cmd":"reload","model":"reduce1","id":7})"));
  EXPECT_TRUE(unchanged.find("ok")->boolean);
  EXPECT_EQ(unchanged.find("id")->number, 7.0);
  EXPECT_EQ(unchanged.find("status")->str, "unchanged");
  EXPECT_EQ(unchanged.find("generation")->number, 1.0);

  // Swap the bundle on disk and reload: generation 2 is promoted and
  // subsequent predictions report it.
  serve::export_model(bundle_path("reduce1"), "reduce1", "reduce1", "gtx580",
                      13, trained_predictor());
  const auto promoted = serve::parse_json(server.handle_line(
      R"({"cmd":"reload","model":"reduce1"})"));
  EXPECT_EQ(promoted.find("status")->str, "promoted");
  EXPECT_EQ(promoted.find("generation")->number, 2.0);
  const auto second = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_EQ(second.find("generation")->number, 2.0);

  // Pin freezes the generation against further reloads; unpin restores.
  const auto pinned = serve::parse_json(server.handle_line(
      R"({"cmd":"pin","model":"reduce1"})"));
  EXPECT_TRUE(pinned.find("ok")->boolean);
  EXPECT_TRUE(pinned.find("resident")->boolean);
  const auto refused = serve::parse_json(server.handle_line(
      R"({"cmd":"reload","model":"reduce1"})"));
  EXPECT_EQ(refused.find("status")->str, "pinned");
  const auto unpinned = serve::parse_json(server.handle_line(
      R"({"cmd":"unpin","model":"reduce1"})"));
  EXPECT_TRUE(unpinned.find("resident")->boolean);

  // The stats surface exposes the full per-model identity row.
  const auto stats = serve::parse_json(server.handle_line(
      R"({"cmd":"stats"})"));
  EXPECT_EQ(stats.find("reloads")->number, 3.0);
  EXPECT_EQ(stats.find("promotions")->number, 1.0);
  EXPECT_EQ(stats.find("rollbacks")->number, 0.0);
  ASSERT_EQ(stats.find("models")->array.size(), 1u);
  const auto& row = stats.find("models")->array[0];
  EXPECT_EQ(row.find("name")->str, "reduce1");
  EXPECT_EQ(row.find("generation")->number, 2.0);
  EXPECT_EQ(row.find("checksum")->str.size(), 16u);
  EXPECT_FALSE(row.find("loaded_at")->str.empty());
  EXPECT_EQ(row.find("rollbacks")->number, 0.0);
  EXPECT_FALSE(row.find("pinned")->boolean);
}

TEST_F(ServeTest, ReloadVerbsRejectedWhenDisabled) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.allow_reload = false;
  serve::Server server(options);

  for (const char* line : {R"({"cmd":"reload","model":"reduce1"})",
                           R"({"cmd":"pin","model":"reduce1"})",
                           R"({"cmd":"unpin","model":"reduce1"})"}) {
    const auto reply = serve::parse_json(server.handle_line(line));
    EXPECT_FALSE(reply.find("ok")->boolean) << line;
    EXPECT_EQ(reply.find("code")->str, "reload_disabled") << line;
  }
  // Prediction traffic is unaffected by the admin lockout.
  const auto predict = serve::parse_json(
      server.handle_line(R"({"model":"reduce1","size":65536})"));
  EXPECT_TRUE(predict.find("ok")->boolean);
}

TEST_F(ServeTest, WatcherPromotesChangedBundleUnderLoad) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.reload_watch_ms = 10;
  serve::Server server(options);
  ASSERT_TRUE(serve::parse_json(
                  server.handle_line(R"({"model":"reduce1","size":65536})"))
                  .find("ok")
                  ->boolean);

  // Rewrite the bundle behind the server's back; the watcher thread must
  // notice and promote without any admin verb.
  serve::export_model(bundle_path("reduce1"), "reduce1", "reduce1", "gtx580",
                      13, trained_predictor());
  touch_future("reduce1");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  double generation = 1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto reply = serve::parse_json(
        server.handle_line(R"({"model":"reduce1","size":65536})"));
    ASSERT_TRUE(reply.find("ok")->boolean);
    generation = reply.find("generation")->number;
    if (generation == 2.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(generation, 2.0);
}

// ---- per-batch coalescing ----

TEST_F(ServeTest, IdenticalRowsInABatchAreComputedOnce) {
  export_named("reduce1");
  serve::ServerOptions options;
  options.model_dir = dir_.string();
  options.threads = 4;
  serve::Server server(options);

  const auto replies = server.handle_batch({
      R"({"model":"reduce1","size":65536,"id":"a"})",
      R"({"model":"reduce1","size":65536,"id":"b"})",
      R"({"model":"reduce1","size":131072,"id":"c"})",
      R"({"model":"reduce1","size":65536,"id":"d"})",
  });
  ASSERT_EQ(replies.size(), 4u);
  // Every duplicate gets a full reply with its own id and the shared
  // prediction, bit-identical to computing it directly.
  const double direct = trained_predictor().predict_guarded(65536).value;
  for (const std::size_t i : {0u, 1u, 3u}) {
    const auto parsed = serve::parse_json(replies[i]);
    EXPECT_TRUE(parsed.find("ok")->boolean) << replies[i];
    EXPECT_EQ(parsed.find("predicted_ms")->number, direct);
  }
  EXPECT_EQ(serve::parse_json(replies[0]).find("id")->str, "a");
  EXPECT_EQ(serve::parse_json(replies[1]).find("id")->str, "b");
  EXPECT_EQ(serve::parse_json(replies[3]).find("id")->str, "d");
  EXPECT_EQ(server.coalesced(), 2u);  // "b" and "d" rode along with "a"

  // The stats surface reports the coalescing work saved.
  const auto stats = serve::parse_json(server.handle_line(
      R"({"cmd":"stats"})"));
  EXPECT_EQ(stats.find("coalesced")->number, 2.0);
}

// ---- the JSON codec ----

TEST(ServeJson, ParsesEscapesAndRejectsGarbage) {
  const auto v = serve::parse_json(
      R"({"s":"a\"b\nA","n":-1.5e3,"b":true,"z":null,"arr":[1,2]})");
  EXPECT_EQ(v.find("s")->str, "a\"b\nA");
  EXPECT_EQ(v.find("n")->number, -1500.0);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.find("arr")->array.size(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);

  EXPECT_THROW(serve::parse_json("{"), Error);
  EXPECT_THROW(serve::parse_json("{} trailing"), Error);
  EXPECT_THROW(serve::parse_json("{\"k\":12garbage}"), Error);
  EXPECT_THROW(serve::parse_json("'single'"), Error);
}

TEST(ServeJson, EscapeAndNumberRoundTrip) {
  EXPECT_EQ(serve::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(serve::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(serve::json_number(0.5), "0.5");
  const double v = 0.024005629469124646;
  EXPECT_EQ(serve::parse_json(serve::json_number(v)).number, v);
  EXPECT_EQ(serve::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

}  // namespace
}  // namespace bf
