// bf::sa static-analysis library tests: lexer edge cases, migration
// parity of the token-based rules against the legacy regex findings on
// the fixture corpus, include-graph/layer-DAG semantics, concurrency
// passes, suppression accounting, baseline policy and the JSON schema
// (parsed with the project's own JSON reader).
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sa/analyzer.hpp"
#include "sa/baseline.hpp"
#include "sa/findings.hpp"
#include "sa/include_graph.hpp"
#include "sa/lexer.hpp"
#include "sa/rules.hpp"
#include "serve/json.hpp"

namespace {

namespace fs = std::filesystem;
using bf::sa::LexedFile;
using bf::sa::TokKind;

#ifndef BF_SA_FIXTURES
#error "BF_SA_FIXTURES must point at tests/sa_fixtures"
#endif
const char* kFixtures = BF_SA_FIXTURES;

std::vector<std::string> token_texts(const LexedFile& f) {
  std::vector<std::string> out;
  out.reserve(f.tokens.size());
  for (const auto& t : f.tokens) out.push_back(t.text);
  return out;
}

bool has_token(const LexedFile& f, const std::string& text) {
  for (const auto& t : f.tokens) {
    if (t.text == text) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer edge cases

TEST(SaLexer, RawStringWithEmbeddedQuotesAndBannedWords) {
  const LexedFile f = bf::sa::lex(
      "t.cpp",
      "const char* s = R\"(new delete \"quoted\" rand())\";\nint after = 1;\n");
  // The raw literal is ONE string token; none of its content leaks into
  // the identifier stream.
  EXPECT_FALSE(has_token(f, "new"));
  EXPECT_FALSE(has_token(f, "rand"));
  bool saw_raw = false;
  for (const auto& t : f.tokens) {
    if (t.kind == TokKind::kString && t.raw) {
      saw_raw = true;
      EXPECT_NE(t.text.find("new delete"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_raw);
  EXPECT_TRUE(has_token(f, "after"));
}

TEST(SaLexer, RawStringCustomDelimiterSurvivesFakeTerminator) {
  // `)"` appears inside the literal; only `)xy"` terminates it.
  const LexedFile f = bf::sa::lex(
      "t.cpp", "auto s = R\"xy(tricky )\" not the end)xy\"; int tail = 2;");
  ASSERT_TRUE(has_token(f, "tail"));
  bool saw_raw = false;
  for (const auto& t : f.tokens) {
    if (t.kind == TokKind::kString && t.raw) {
      saw_raw = true;
      EXPECT_NE(t.text.find("not the end"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_raw);
}

TEST(SaLexer, MultilineRawStringKeepsLineNumbers) {
  const LexedFile f =
      bf::sa::lex("t.cpp", "auto s = R\"(a\nb\nc)\";\nint last = 3;\n");
  for (const auto& t : f.tokens) {
    if (t.text == "last") {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(SaLexer, LineContinuationExtendsLineComment) {
  // The backslash makes line 2 part of the comment: no `new` token.
  const LexedFile f =
      bf::sa::lex("t.cpp", "int a = 1; // comment \\\nint* p = new int;\n");
  EXPECT_FALSE(has_token(f, "new"));
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].line, 1);
  EXPECT_EQ(f.comments[0].end_line, 2);
}

TEST(SaLexer, CharLiteralEscapes) {
  const LexedFile f = bf::sa::lex(
      "t.cpp", "char q = '\\''; char b = '\\\\'; int rand_free = 0;");
  // '\'' and '\\' must not desynchronise the state machine: the
  // identifier after them still lexes as code.
  EXPECT_TRUE(has_token(f, "rand_free"));
  int chars = 0;
  for (const auto& t : f.tokens) chars += t.kind == TokKind::kChar ? 1 : 0;
  EXPECT_EQ(chars, 2);
}

TEST(SaLexer, AdjacentStringLiteralsStaySeparate) {
  const LexedFile f =
      bf::sa::lex("t.cpp", "const char* s = \"one new \" \"two rand\";");
  int strings = 0;
  for (const auto& t : f.tokens) strings += t.kind == TokKind::kString ? 1 : 0;
  EXPECT_EQ(strings, 2);
  EXPECT_FALSE(has_token(f, "new"));
  EXPECT_FALSE(has_token(f, "rand"));
}

TEST(SaLexer, BlockCommentOpenerInsideStringIsData) {
  const LexedFile f = bf::sa::lex(
      "t.cpp", "auto a = \"/* not a comment\"; int live = 1; /* real */");
  EXPECT_TRUE(has_token(f, "live"));
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].text, "/* real */");
}

TEST(SaLexer, MultiCharPunctuatorsMerge) {
  const LexedFile f = bf::sa::lex("t.cpp", "a->b; std::x; c <<= 2; d && e;");
  const std::vector<std::string> texts = token_texts(f);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<<="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "&&"), texts.end());
}

TEST(SaLexer, NumbersWithSeparatorsAndFloatSuffix) {
  const LexedFile f =
      bf::sa::lex("t.cpp", "auto a = 1'000'000; auto b = 2.5f; auto c = 0xFF;");
  int numbers = 0;
  for (const auto& t : f.tokens) {
    if (t.kind != TokKind::kNumber) continue;
    ++numbers;
    if (t.text == "1'000'000") {
      EXPECT_FALSE(bf::sa::is_float_literal(t.text));
    }
    if (t.text == "2.5f") {
      EXPECT_TRUE(bf::sa::is_float_literal(t.text));
    }
    if (t.text == "0xFF") {
      EXPECT_FALSE(bf::sa::is_float_literal(t.text));
    }
  }
  EXPECT_EQ(numbers, 3);
}

// ---------------------------------------------------------------------------
// Corpus: migration parity + one seeded violation per rule

bf::sa::AnalysisReport analyze_corpus(const std::string& baseline = "") {
  bf::sa::AnalyzerOptions opt;
  opt.roots = {std::string(kFixtures) + "/corpus"};
  opt.baseline_path = baseline;
  return bf::sa::analyze(opt);
}

struct Expected {
  const char* rule;
  const char* file;  // repo-relative within the corpus
  int line;
};

// The complete expected finding set for the fixture corpus. The legacy
// regex linter's nine rules are all represented (migration parity: the
// token engine reproduces each of them), plus the new pass families.
const Expected kCorpusExpected[] = {
    {"raw-new", "src/common/banned.cpp", 7},
    {"raw-delete", "src/common/banned.cpp", 12},
    {"no-rand", "src/common/banned.cpp", 16},
    {"float-literal", "src/common/banned.cpp", 20},
    {"unchecked-parse", "src/common/banned.cpp", 24},
    {"include-cycle", "src/common/cycle_b.hpp", 3},
    {"duplicate-include", "src/common/dup_include.cpp", 3},
    {"capture-escape", "src/common/escape.cpp", 13},
    {"capture-escape", "src/common/escape.cpp", 15},
    {"mutable-global", "src/common/globals.cpp", 7},
    {"lock-order", "src/common/locks.cpp", 18},
    {"pragma-once", "src/common/missing_pragma.hpp", 1},
    {"unused-suppression", "src/common/unused.cpp", 4},
    {"guarded-predict", "src/core/raw_query.cpp", 5},
    {"guarded-predict", "src/core/raw_query.cpp", 13},
    {"guarded-predict", "src/core/raw_query.cpp", 14},
    {"guarded-predict", "src/power/raw_power.cpp", 13},
    {"guarded-predict", "src/power/raw_power.cpp", 18},
    {"layer-dag", "src/ml/layered.hpp", 4},
    {"artifact-version", "src/ml/reader.cpp", 9},
    {"atomic-write", "src/profiling/torn.cpp", 6},
    {"flat-predict", "src/serve/hot_path.cpp", 5},
    {"flat-predict", "src/serve/hot_path.cpp", 9},
    {"registry-swap", "src/serve/pinned.cpp", 9},
    {"registry-swap", "src/serve/pinned.cpp", 10},
    {"guarded-predict", "src/serve/unguarded_reply.cpp", 9},
};

TEST(SaCorpus, EverySeededViolationIsFoundAtItsLine) {
  const auto report = analyze_corpus();
  for (const Expected& e : kCorpusExpected) {
    bool found = false;
    for (const auto& f : report.findings) {
      if (f.rule == e.rule && f.file == e.file && f.line == e.line) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << e.rule << " at " << e.file << ":" << e.line;
  }
}

TEST(SaCorpus, NoFalsePositivesBeyondTheSeededSet) {
  const auto report = analyze_corpus();
  EXPECT_EQ(report.findings.size(), std::size(kCorpusExpected));
  // The lexer-stress file is engineered to fool line-oriented scanners;
  // the token engine must report nothing in it.
  for (const auto& f : report.findings) {
    EXPECT_EQ(f.file.find("tricky_lexer"), std::string::npos)
        << "false positive: " << f.rule << " in " << f.file << ":" << f.line;
  }
  // The by-value submit in escape.cpp must not fire.
  int escapes = 0;
  for (const auto& f : report.findings) {
    escapes += f.rule == "capture-escape" ? 1 : 0;
  }
  EXPECT_EQ(escapes, 2);
}

TEST(SaCorpus, LegacyRegexRulesAllMigrated) {
  // Migration parity: every rule the 358-line regex linter implemented
  // appears in the corpus findings from the token-based engine.
  const std::set<std::string> legacy = {
      "pragma-once",     "raw-new",        "raw-delete",
      "no-rand",         "float-literal",  "unchecked-parse",
      "atomic-write",    "guarded-predict", "artifact-version"};
  const auto report = analyze_corpus();
  std::set<std::string> seen;
  for (const auto& f : report.findings) seen.insert(f.rule);
  for (const auto& rule : legacy) {
    EXPECT_TRUE(seen.count(rule) != 0) << "legacy rule not migrated: " << rule;
  }
}

TEST(SaCorpus, SuppressionAccountingCountsTheAuditedAllow) {
  // locks.cpp carries one used suppression (mutable-global on
  // shared_value), hot_path.cpp one more (flat-predict on the audited
  // exit) and raw_power.cpp a third (guarded-predict on the audited
  // unguarded scalar query); unused.cpp carries one unused one
  // (reported).
  const auto report = analyze_corpus();
  EXPECT_EQ(report.stats.suppressed, 3u);
  EXPECT_EQ(report.stats.files_scanned, 19u);
}

// ---------------------------------------------------------------------------
// Include graph / layer table

TEST(SaIncludeGraph, ModuleAssignment) {
  EXPECT_EQ(bf::sa::module_of("src/ml/tree.cpp"), "ml");
  EXPECT_EQ(bf::sa::module_of("src/gpusim/engine.hpp"), "gpusim");
  EXPECT_EQ(bf::sa::module_of("tools/bf_lint.cpp"), "tools");
  EXPECT_EQ(bf::sa::module_of("tests/sa_test.cpp"), "tests");
  EXPECT_EQ(bf::sa::module_of("bench/bench_util.hpp"), "bench");
  EXPECT_EQ(bf::sa::module_of("README.md"), "");
}

TEST(SaIncludeGraph, LayerTableShape) {
  // Spot-check the declarative table: common is the root (no deps), the
  // executable roots are wildcarded, and no module other than those
  // roots is allowed to reach serve.
  bool common_ok = false;
  for (const auto& l : bf::sa::layer_table()) {
    const std::string mod = l.module;
    if (mod == "common") {
      common_ok = l.allowed.empty();
      continue;
    }
    for (const char* dep : l.allowed) {
      if (std::string(dep) == "serve") {
        ADD_FAILURE() << mod << " may not depend on serve";
      }
      if (std::string(dep) == "*") {
        EXPECT_TRUE(mod == "tools" || mod == "tests" || mod == "bench" ||
                    mod == "examples")
            << mod << " must not be wildcarded";
      }
    }
  }
  EXPECT_TRUE(common_ok) << "common must have no allowed dependencies";
}

// ---------------------------------------------------------------------------
// Concurrency pass details (beyond the corpus seeds)

/// Write inline sources into a temp tree and analyze it.
bf::sa::AnalysisReport analyze_snippets(
    const std::vector<std::pair<std::string, std::string>>& files) {
  static int counter = 0;
  const fs::path root = fs::temp_directory_path() /
                        ("bf_sa_test_" + std::to_string(++counter));
  fs::create_directories(root);
  for (const auto& [rel, content] : files) {
    const fs::path p = root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream os(p);
    os << content;
  }
  bf::sa::AnalyzerOptions opt;
  opt.roots = {root.string()};
  opt.repo_root = root.string();
  const auto report = bf::sa::analyze(opt);
  fs::remove_all(root);
  return report;
}

int count_rule(const bf::sa::AnalysisReport& r, const std::string& rule) {
  int n = 0;
  for (const auto& f : r.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

TEST(SaConcurrency, ConsistentLockOrderIsClean) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
#include <mutex>
std::mutex mu_a;
std::mutex mu_b;
void f() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
}
void g() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "lock-order"), 0);
}

TEST(SaConcurrency, ScopedLockMultiArgIsClean) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
#include <mutex>
std::mutex mu_a;
std::mutex mu_b;
void f() { std::scoped_lock lk(mu_a, mu_b); }
void g() { std::scoped_lock lk(mu_b, mu_a); }
)cpp"}});
  EXPECT_EQ(count_rule(report, "lock-order"), 0);
}

TEST(SaConcurrency, ManualLockUnlockOrderInconsistencyFires) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
#include <mutex>
std::mutex mu_a;
std::mutex mu_b;
void f() {
  mu_a.lock();
  mu_b.lock();
  mu_b.unlock();
  mu_a.unlock();
}
void g() {
  mu_b.lock();
  mu_a.lock();
  mu_a.unlock();
  mu_b.unlock();
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "lock-order"), 1);
}

TEST(SaConcurrency, SequentialGuardsInSiblingScopesAreClean) {
  // The first guard dies at its block's closing brace, so the second
  // acquisition is not nested and no pair is recorded.
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
#include <mutex>
std::mutex mu_a;
std::mutex mu_b;
void f() {
  { std::lock_guard<std::mutex> la(mu_a); }
  { std::lock_guard<std::mutex> lb(mu_b); }
}
void g() {
  { std::lock_guard<std::mutex> lb(mu_b); }
  { std::lock_guard<std::mutex> la(mu_a); }
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "lock-order"), 0);
}

TEST(SaConcurrency, ParallelForByRefIsAllowed) {
  // parallel_for blocks until completion, so by-ref captures are safe
  // and the pass only targets submit/std::thread.
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
struct Pool { template <typename F> void parallel_for(int, int, F&&); };
void f(Pool& pool) {
  int sum = 0;
  pool.parallel_for(0, 8, [&](int i) { sum += i; });
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "capture-escape"), 0);
}

TEST(SaConcurrency, MutableGlobalSkipsDeclarationsAndFunctions) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
#include <string>
int declared_function(int x);
extern int extern_var;
using alias = int;
struct Fwd;
int mutable_one = 1;
namespace nested {
double mutable_two;
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "mutable-global"), 2);
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(SaSuppression, TrailingAllowSilencesAndWholeLineCommentDoesNot) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
void f() {
  int* a = new int;  // bf-lint: allow(raw-new)
  int* b = new int;
  (void)a; (void)b;
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "raw-new"), 1);
  EXPECT_EQ(report.stats.suppressed, 1u);
  EXPECT_EQ(count_rule(report, "unused-suppression"), 0);
}

TEST(SaSuppression, CommentListSuppressesMultipleRules) {
  const auto report = analyze_snippets({{"a.cpp", R"cpp(
void f(const char* s) {
  double d = atof(s) + 0.5f;  // bf-lint: allow(unchecked-parse, float-literal)
  (void)d;
}
)cpp"}});
  EXPECT_EQ(count_rule(report, "unchecked-parse"), 0);
  EXPECT_EQ(count_rule(report, "float-literal"), 0);
  EXPECT_EQ(report.stats.suppressed, 2u);
}

// ---------------------------------------------------------------------------
// Baseline

TEST(SaBaseline, ParseMatchStaleAndJustification) {
  const bf::sa::Baseline b = bf::sa::parse_baseline(
      "base.txt",
      "# comment line\n"
      "raw-new|src/a.cpp|  # grandfathered: legacy allocator\n"
      "no-rand|src/b.cpp|\n");
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].key, "raw-new|src/a.cpp|");
  EXPECT_EQ(b.entries[0].justification, "grandfathered: legacy allocator");
  EXPECT_TRUE(b.entries[1].justification.empty());

  std::vector<bf::sa::Finding> findings;
  bf::sa::Finding f;
  f.file = "src/a.cpp";
  f.line = 10;
  f.rule = "raw-new";
  findings.push_back(f);
  bf::sa::ReportStats stats;
  bf::sa::apply_baseline(b, findings, stats);
  EXPECT_EQ(stats.baselined, 1u);
  // Survivors: stale-baseline for the no-rand entry and baseline-format
  // for its missing justification.
  std::set<std::string> rules;
  for (const auto& x : findings) rules.insert(x.rule);
  EXPECT_TRUE(rules.count("stale-baseline") != 0);
  EXPECT_TRUE(rules.count("baseline-format") != 0);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SaBaseline, CorpusWithFullBaselineIsClean) {
  // Baseline every corpus finding; the run must come back clean with
  // baselined == finding count and no stale entries.
  const auto raw = analyze_corpus();
  std::string baseline_text;
  for (const auto& f : raw.findings) {
    baseline_text += bf::sa::finding_key(f) + "  # corpus seed\n";
  }
  const fs::path base =
      fs::temp_directory_path() / "bf_sa_corpus_baseline.txt";
  {
    std::ofstream os(base);
    os << baseline_text;
  }
  const auto report = analyze_corpus(base.string());
  fs::remove(base);
  EXPECT_TRUE(report.findings.empty())
      << report.findings.size() << " findings survived the full baseline";
  EXPECT_EQ(report.stats.baselined, raw.findings.size());
}

// ---------------------------------------------------------------------------
// JSON schema, parsed with the project's own reader

TEST(SaJson, RoundTripsThroughProjectJsonReader) {
  const auto report = analyze_corpus();
  const std::string json =
      bf::sa::render_json(report.findings, report.stats);
  const bf::serve::JsonValue doc = bf::serve::parse_json(json);
  ASSERT_EQ(doc.type, bf::serve::JsonValue::Type::kObject);
  EXPECT_EQ(doc.find("tool")->str, "bf_lint");
  EXPECT_EQ(doc.find("schema_version")->number, 1.0);
  EXPECT_EQ(doc.find("files_scanned")->number,
            static_cast<double>(report.stats.files_scanned));
  const bf::serve::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), report.findings.size());
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const auto& jf = findings->array[i];
    const auto& f = report.findings[i];
    EXPECT_EQ(jf.find("file")->str, f.file);
    EXPECT_EQ(jf.find("line")->number, static_cast<double>(f.line));
    EXPECT_EQ(jf.find("rule")->str, f.rule);
    EXPECT_EQ(jf.find("severity")->str,
              bf::sa::severity_name(f.severity));
    EXPECT_EQ(jf.find("key")->str, bf::sa::finding_key(f));
    EXPECT_EQ(jf.find("message")->str, f.message);
  }
}

TEST(SaJson, EscapesSpecialCharacters) {
  std::vector<bf::sa::Finding> findings;
  bf::sa::Finding f;
  f.file = "src/weird \"path\"\\x.cpp";
  f.line = 1;
  f.rule = "io";
  f.message = "tab\there\nnewline";
  findings.push_back(f);
  const std::string json = bf::sa::render_json(findings, {});
  const bf::serve::JsonValue doc = bf::serve::parse_json(json);
  EXPECT_EQ(doc.find("findings")->array[0].find("file")->str, f.file);
  EXPECT_EQ(doc.find("findings")->array[0].find("message")->str, f.message);
}

// ---------------------------------------------------------------------------
// Registry

TEST(SaRules, RegistryCoversEveryCorpusRuleAndRejectsUnknown) {
  const auto report = analyze_corpus();
  for (const auto& f : report.findings) {
    EXPECT_TRUE(bf::sa::is_known_rule(f.rule)) << f.rule;
  }
  EXPECT_FALSE(bf::sa::is_known_rule("no-such-rule"));
}

}  // namespace
