// Tests for the profiling layer: counter registry, metric derivation,
// sweeps, and the run repository.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "gpusim/engine.hpp"
#include "profiling/counter_registry.hpp"
#include "profiling/profiler.hpp"
#include "profiling/repository.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

namespace bf::profiling {
namespace {

using gpusim::Device;
using gpusim::Generation;
using gpusim::gtx580;
using gpusim::kepler_k20m;

// ---- counter registry ----

TEST(CounterRegistry, Table1CountersPresent) {
  // Spot-check the paper's Table 1 names.
  for (const char* name :
       {"shared_replay_overhead", "shared_load", "shared_store",
        "inst_replay_overhead", "l1_global_load_hit", "l1_global_load_miss",
        "gld_request", "gst_request", "global_store_transaction",
        "gld_requested_throughput", "achieved_occupancy",
        "l2_read_throughput", "l2_write_transactions", "ipc",
        "issue_slot_utilization", "warp_execution_efficiency"}) {
    EXPECT_NO_THROW(counter_info(name)) << name;
  }
}

TEST(CounterRegistry, GenerationAvailabilityMatchesPaperSection7) {
  // "the absence of the Fermi metric l1_shared_bank_conflict on Kepler,
  // which in turn, has shared_load_replay and shared_store_replay
  // unknown to Fermi."
  EXPECT_TRUE(counter_available("l1_shared_bank_conflict",
                                Generation::kFermi));
  EXPECT_FALSE(counter_available("l1_shared_bank_conflict",
                                 Generation::kKepler));
  EXPECT_FALSE(counter_available("shared_load_replay", Generation::kFermi));
  EXPECT_TRUE(counter_available("shared_load_replay", Generation::kKepler));
  EXPECT_TRUE(counter_available("ipc", Generation::kFermi));
  EXPECT_TRUE(counter_available("ipc", Generation::kKepler));
}

TEST(CounterRegistry, UnknownCounterThrows) {
  EXPECT_THROW(counter_info("warp_bogosity"), Error);
}

TEST(CounterRegistry, CountersForGenerationDiffer) {
  const auto fermi = counters_for(Generation::kFermi);
  const auto kepler = counters_for(Generation::kKepler);
  EXPECT_NE(fermi, kepler);
  EXPECT_GT(fermi.size(), 20u);
  EXPECT_GT(kepler.size(), 20u);
}

// ---- metric derivation ----

TEST(Profiler, DerivedMetricsWithinPhysicalBounds) {
  const Device dev(gtx580());
  Profiler profiler;
  const auto r = profiler.profile(reduce_workload(2), dev, 1 << 18);
  const auto& m = r.counters;
  EXPECT_GT(m.at("ipc"), 0.0);
  EXPECT_LE(m.at("ipc"), 2.0);
  EXPECT_GT(m.at("achieved_occupancy"), 0.0);
  EXPECT_LE(m.at("achieved_occupancy"), 1.0);
  EXPECT_GE(m.at("warp_execution_efficiency"), 0.0);
  EXPECT_LE(m.at("warp_execution_efficiency"), 1.0);
  EXPECT_GE(m.at("inst_replay_overhead"), 0.0);
  EXPECT_LE(m.at("issue_slot_utilization"), 1.0);
  EXPECT_LE(m.at("gld_throughput"), 2000.0);  // GB/s sanity
  EXPECT_GT(m.at("power_avg_w"), 20.0);
  EXPECT_LT(m.at("power_avg_w"), 400.0);
}

TEST(Profiler, ArchFiltersCounters) {
  const Device fermi(gtx580());
  const Device kepler(kepler_k20m());
  Profiler profiler;
  const auto rf = profiler.profile(reduce_workload(1), fermi, 1 << 16);
  const auto rk = profiler.profile(reduce_workload(1), kepler, 1 << 16);
  EXPECT_TRUE(rf.counters.count("l1_shared_bank_conflict"));
  EXPECT_FALSE(rf.counters.count("shared_load_replay"));
  EXPECT_FALSE(rk.counters.count("l1_shared_bank_conflict"));
  EXPECT_TRUE(rk.counters.count("shared_load_replay"));
  EXPECT_EQ(rf.arch, "gtx580");
  EXPECT_EQ(rk.arch, "k20m");
}

TEST(Profiler, NoiseIsDeterministicPerSeed) {
  const Device dev(gtx580());
  ProfilerOptions a;
  a.seed = 5;
  ProfilerOptions b;
  b.seed = 5;
  Profiler pa(a);
  Profiler pb(b);
  const auto ra = pa.profile(matmul_workload(), dev, 128);
  const auto rb = pb.profile(matmul_workload(), dev, 128);
  EXPECT_DOUBLE_EQ(ra.time_ms, rb.time_ms);
  EXPECT_DOUBLE_EQ(ra.counters.at("ipc"), rb.counters.at("ipc"));
}

TEST(Profiler, ZeroNoiseReproducesSimulator) {
  const Device dev(gtx580());
  ProfilerOptions opt;
  opt.time_noise_sd = 0.0;
  opt.counter_noise_sd = 0.0;
  Profiler profiler(opt);
  const auto a = profiler.profile(vecadd_workload(), dev, 1 << 16);
  const auto b = profiler.profile(vecadd_workload(), dev, 1 << 16);
  EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
}

TEST(Profiler, DeriveMetricsRejectsZeroTime) {
  gpusim::CounterSet c;
  EXPECT_THROW(Profiler::derive_metrics(gtx580(), c, 0.0), Error);
}

// ---- workloads ----

TEST(Workloads, RegistryLookup) {
  EXPECT_EQ(workload_by_name("reduce6").name, "reduce6");
  EXPECT_EQ(workload_by_name("matrixMul").name, "matrixMul");
  EXPECT_EQ(workload_by_name("needle").name, "needle");
  EXPECT_THROW(workload_by_name("bitcoin_miner"), Error);
  EXPECT_GE(all_workloads().size(), 13u);
}

TEST(Workloads, InvalidProblemSizeRejected) {
  const Device dev(gtx580());
  Profiler profiler;
  EXPECT_THROW(profiler.profile(reduce_workload(1), dev, 0.0), Error);
}

// ---- sweeps ----

TEST(Sweep, SchemaAndRowCount) {
  const Device dev(gtx580());
  const auto ds = sweep(reduce_workload(2), dev, {1 << 14, 1 << 15, 1 << 16});
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_TRUE(ds.has_column(kSizeColumn));
  EXPECT_TRUE(ds.has_column(kTimeColumn));
  EXPECT_TRUE(ds.has_column("ipc"));
  EXPECT_FALSE(ds.has_column("wsched"));
  // Sizes recorded in order.
  EXPECT_DOUBLE_EQ(ds.at(0, kSizeColumn), 1 << 14);
  EXPECT_DOUBLE_EQ(ds.at(2, kSizeColumn), 1 << 16);
}

TEST(Sweep, MachineCharacteristicsInjected) {
  const Device dev(kepler_k20m());
  SweepOptions opt;
  opt.machine_characteristics = true;
  const auto ds = sweep(vecadd_workload(), dev, {1 << 14, 1 << 16}, opt);
  EXPECT_TRUE(ds.has_column("wsched"));
  EXPECT_DOUBLE_EQ(ds.at(0, "wsched"), 4.0);
  EXPECT_DOUBLE_EQ(ds.at(1, "smp"), 13.0);
  EXPECT_DOUBLE_EQ(ds.at(0, "mbw"), 208.0);
}

TEST(Sweep, TimeIncreasesWithSize) {
  const Device dev(gtx580());
  const auto ds = sweep(matmul_workload(), dev, {64, 256, 512});
  const auto& t = ds.column(kTimeColumn);
  EXPECT_LT(t[0], t[1]);
  EXPECT_LT(t[1], t[2]);
}

TEST(Sweep, SizeHelpers) {
  const auto lin = linear_sizes(64, 320, 64);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin.front(), 64.0);
  EXPECT_DOUBLE_EQ(lin.back(), 320.0);

  const auto log = log2_sizes(32, 2048, 7, 16);
  EXPECT_DOUBLE_EQ(log.front(), 32.0);
  EXPECT_DOUBLE_EQ(log.back(), 2048.0);
  for (const double v : log) {
    EXPECT_EQ(static_cast<long long>(v) % 16, 0);
  }
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i], log[i - 1]);
  }
  EXPECT_THROW(log2_sizes(100, 50, 5), Error);
  EXPECT_THROW(linear_sizes(10, 5, 1), Error);
}

TEST(Sweep, EmptySizesRejected) {
  const Device dev(gtx580());
  EXPECT_THROW(sweep(vecadd_workload(), dev, {}), Error);
}

// ---- repository ----

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("bf_repo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::filesystem::path root_;
};

TEST_F(RepositoryTest, SaveLoadRoundTrip) {
  const RunRepository repo(root_.string());
  ml::Dataset ds;
  ds.add_column("size", {1, 2});
  ds.add_column("time_ms", {0.5, 1.5});
  repo.save("reduce1", "gtx580", ds);
  EXPECT_TRUE(repo.contains("reduce1", "gtx580"));
  const auto back = repo.load("reduce1", "gtx580");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back->at(1, "time_ms"), 1.5);
}

TEST_F(RepositoryTest, MissingKeyIsNullopt) {
  const RunRepository repo(root_.string());
  EXPECT_FALSE(repo.load("nothing", "here").has_value());
  EXPECT_FALSE(repo.contains("nothing", "here"));
}

TEST_F(RepositoryTest, GetOrCollectCaches) {
  const RunRepository repo(root_.string());
  int calls = 0;
  const auto produce = [&] {
    ++calls;
    ml::Dataset ds;
    ds.add_column("x", {1});
    return ds;
  };
  (void)repo.get_or_collect("w", "a", produce);
  (void)repo.get_or_collect("w", "a", produce);
  EXPECT_EQ(calls, 1);
}

TEST_F(RepositoryTest, KeysEnumerated) {
  const RunRepository repo(root_.string());
  ml::Dataset ds;
  ds.add_column("x", {1});
  repo.save("needle", "k20m", ds);
  repo.save("matrixMul", "gtx580", ds);
  const auto keys = repo.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].first, "matrixMul");
  EXPECT_EQ(keys[1].second, "k20m");
}

}  // namespace
}  // namespace bf::profiling
