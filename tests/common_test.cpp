// Tests for bf::common: RNG, CSV, string utilities, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

namespace bf {
namespace {

// ---- error handling ----

TEST(Error, CheckThrowsWithContext) {
  try {
    BF_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(BF_CHECK(2 + 2 == 4));
}

// ---- RNG ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BootstrapIndicesInRangeAndRepeats) {
  Rng rng(13);
  const auto idx = rng.bootstrap_indices(100);
  EXPECT_EQ(idx.size(), 100u);
  std::set<std::size_t> distinct(idx.begin(), idx.end());
  for (const auto i : idx) EXPECT_LT(i, 100u);
  // A bootstrap of n draws ~63% distinct values on average.
  EXPECT_LT(distinct.size(), 80u);
  EXPECT_GT(distinct.size(), 45u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (const auto i : s) EXPECT_LT(i, 50u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child should not replay the parent's stream.
  Rng b(21);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---- string utilities ----

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("inst_executed", "inst"));
  EXPECT_FALSE(starts_with("in", "inst"));
}

TEST(StringUtil, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KB");
  EXPECT_EQ(human_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

// ---- CSV ----

TEST(Csv, RoundTripSimple) {
  CsvTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3.5", "x"});
  std::ostringstream os;
  t.write(os);
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is);
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.cell(0, "a"), "1");
  EXPECT_EQ(back.cell(1, "b"), "x");
  EXPECT_DOUBLE_EQ(back.cell_as_double(1, "a"), 3.5);
}

TEST(Csv, QuotingOfCommasAndQuotes) {
  CsvTable t({"text"});
  t.add_row({"hello, \"world\""});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), "text\n\"hello, \"\"world\"\"\"\n");
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is);
  EXPECT_EQ(back.cell(0, 0), "hello, \"world\"");
}

TEST(Csv, RaggedRowRejected) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Csv, UnknownColumnRejected) {
  CsvTable t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.column_index("nope"), Error);
  EXPECT_TRUE(t.has_column("a"));
  EXPECT_FALSE(t.has_column("b"));
}

TEST(Csv, MalformedDoubleRejected) {
  CsvTable t({"a"});
  t.add_row({"not_a_number"});
  EXPECT_THROW(t.cell_as_double(0, 0), Error);
}

TEST(Csv, EmptyInputRejected) {
  std::istringstream is("");
  EXPECT_THROW(CsvTable::read(is), Error);
}

TEST(Csv, ToleratesCrLf) {
  std::istringstream is("a,b\r\n1,2\r\n");
  const CsvTable t = CsvTable::read(is);
  EXPECT_EQ(t.cell(0, "b"), "2");
}

TEST(Csv, ColumnAsDoubles) {
  CsvTable t({"v"});
  t.add_row({"1"});
  t.add_row({"2.5"});
  const auto col = t.column_as_doubles("v");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[1], 2.5);
}

// ---- thread pool ----

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int count = 0;
  pool.parallel_for(5, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(3, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    // Audited: wait_idle() below keeps `done` alive past every task.
    pool.submit([&] { done++; });  // bf-lint: allow(capture-escape)
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace bf
