// Tests for PCA and varimax rotation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/pca.hpp"

namespace bf::ml {
namespace {

TEST(Pca, RecoversDominantDirection) {
  // Points along y = 2x with small perpendicular noise: PC1 must align
  // with (1, 2)/sqrt(5).
  Rng rng(1);
  linalg::Matrix x(300, 2);
  for (std::size_t i = 0; i < 300; ++i) {
    const double t = rng.normal(0.0, 3.0);
    const double noise = rng.normal(0.0, 0.05);
    x(i, 0) = t - 2.0 * noise;
    x(i, 1) = 2.0 * t + noise;
  }
  Pca pca;
  PcaParams params;
  params.scale = false;
  pca.fit(x, {"a", "b"}, params);
  const double r0 = pca.rotation()(0, 0);
  const double r1 = pca.rotation()(1, 0);
  EXPECT_NEAR(std::fabs(r1 / r0), 2.0, 0.05);
  // First component dominates the variance.
  EXPECT_GT(pca.variance_proportion()[0], 0.99);
}

TEST(Pca, VarianceProportionsSumToOne) {
  Rng rng(2);
  linalg::Matrix x(50, 4);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.normal();
  }
  Pca pca;
  pca.fit(x, {"a", "b", "c", "d"});
  const auto prop = pca.variance_proportion();
  double total = 0.0;
  for (const double p : prop) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto cum = pca.cumulative_variance();
  EXPECT_NEAR(cum.back(), 1.0, 1e-9);
  for (std::size_t i = 1; i < cum.size(); ++i) {
    EXPECT_GE(cum[i], cum[i - 1] - 1e-12);
  }
}

TEST(Pca, ScoresMatchTransform) {
  Rng rng(3);
  linalg::Matrix x(40, 3);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(0, 5);
  }
  Pca pca;
  pca.fit(x, {"a", "b", "c"});
  const auto t = pca.transform(x);
  EXPECT_LT(linalg::Matrix::max_abs_diff(t, pca.scores()), 1e-9);
}

TEST(Pca, CorrelatedGroupsLandInOneComponent) {
  // Two independent groups of correlated variables: (a, b) and (c, d).
  Rng rng(4);
  linalg::Matrix x(200, 4);
  for (std::size_t i = 0; i < 200; ++i) {
    const double g1 = rng.normal();
    const double g2 = rng.normal();
    x(i, 0) = g1 + 0.05 * rng.normal();
    x(i, 1) = -g1 + 0.05 * rng.normal();
    x(i, 2) = g2 + 0.05 * rng.normal();
    x(i, 3) = g2 + 0.05 * rng.normal();
  }
  Pca pca;
  PcaParams params;
  params.variance_target = 0.95;
  pca.fit(x, {"a", "b", "c", "d"}, params);
  EXPECT_EQ(pca.num_retained(), 2u);
  pca.varimax();
  const auto strong = pca.strong_loadings(0.4);
  ASSERT_EQ(strong.size(), 2u);
  // Each rotated component should load on exactly one group.
  for (const auto& comp : strong) {
    ASSERT_EQ(comp.size(), 2u);
    const bool group1 = (comp[0].first == "a" || comp[0].first == "b");
    for (const auto& [name, loading] : comp) {
      (void)loading;
      if (group1) {
        EXPECT_TRUE(name == "a" || name == "b");
      } else {
        EXPECT_TRUE(name == "c" || name == "d");
      }
    }
  }
}

TEST(Pca, VarimaxPreservesExplainedVariance) {
  Rng rng(5);
  linalg::Matrix x(100, 5);
  for (std::size_t i = 0; i < 100; ++i) {
    const double f = rng.normal();
    for (std::size_t j = 0; j < 5; ++j) {
      x(i, j) = f * (static_cast<double>(j) + 1) + rng.normal();
    }
  }
  Pca pca;
  pca.fit(x, {"a", "b", "c", "d", "e"});
  const std::size_t k = pca.num_retained();
  // Total squared loading mass is rotation-invariant.
  double before = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t v = 0; v < 5; ++v) {
      const double l = pca.rotation()(v, j) * pca.sdev()[j];
      before += l * l;
    }
  }
  const auto& rotated = pca.varimax();
  double after = 0.0;
  for (std::size_t j = 0; j < rotated.cols(); ++j) {
    for (std::size_t v = 0; v < rotated.rows(); ++v) {
      after += rotated(v, j) * rotated(v, j);
    }
  }
  EXPECT_NEAR(before, after, 1e-6 * std::max(1.0, before));
}

TEST(Pca, LoadingLookup) {
  Rng rng(6);
  linalg::Matrix x(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
  }
  Pca pca;
  pca.fit(x, {"first", "second"});
  EXPECT_NO_THROW(pca.loading("first", 0));
  EXPECT_THROW(pca.loading("missing", 0), Error);
  EXPECT_THROW(pca.loading("first", 5), Error);
}

TEST(Pca, ConstantColumnHandledGracefully) {
  Rng rng(7);
  linalg::Matrix x(25, 2);
  for (std::size_t i = 0; i < 25; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 3.0;  // constant
  }
  Pca pca;
  EXPECT_NO_THROW(pca.fit(x, {"var", "const"}));
  // The constant column contributes ~zero variance.
  EXPECT_NEAR(pca.variance_proportion()[0], 1.0, 1e-9);
}

class PcaOrthonormality : public ::testing::TestWithParam<int> {};

TEST_P(PcaOrthonormality, RotationIsOrthonormal) {
  const int p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p) * 13 + 1);
  linalg::Matrix x(60, static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(p); ++j) {
      x(i, j) = rng.uniform(-5, 5);
    }
  }
  Pca pca;
  pca.fit(x, std::vector<std::string>(static_cast<std::size_t>(p), "v"));
  // NOTE: duplicate names are fine for this structural property test.
  const auto& r = pca.rotation();
  const linalg::Matrix rtr = r.transpose() * r;
  EXPECT_LT(linalg::Matrix::max_abs_diff(
                rtr, linalg::Matrix::identity(static_cast<std::size_t>(p))),
            1e-8);
  // sdev sorted descending.
  for (std::size_t j = 1; j < pca.sdev().size(); ++j) {
    EXPECT_GE(pca.sdev()[j - 1], pca.sdev()[j] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PcaOrthonormality,
                         ::testing::Values(2, 3, 6, 10, 15));

}  // namespace
}  // namespace bf::ml
