// Property-style sweeps over the simulator and the metric derivation:
// invariants that must hold for every workload/architecture/size
// combination, plus exact-formula checks of the nvprof metric layer.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "gpusim/engine.hpp"
#include "kernels/kernel_base.hpp"
#include "kernels/matmul.hpp"
#include "kernels/misc.hpp"
#include "kernels/nw.hpp"
#include "kernels/reduce.hpp"
#include "profiling/profiler.hpp"
#include "profiling/workloads.hpp"

namespace bf {
namespace {

using gpusim::Device;
using gpusim::Event;

// ---- invariants across workload x architecture ----

class WorkloadArchSweep
    : public ::testing::TestWithParam<
          std::tuple<const char*, const char*>> {};

TEST_P(WorkloadArchSweep, CountersSatisfyUniversalInvariants) {
  const auto [workload_name, arch_name] = GetParam();
  const Device device(gpusim::arch_by_name(arch_name));
  profiling::Profiler profiler;
  const auto w = profiling::workload_by_name(workload_name);
  const double size =
      std::string(workload_name) == "matrixMul" ||
              std::string(workload_name).rfind("transpose", 0) == 0 ||
              std::string(workload_name) == "stencil5"
          ? 256
          : (std::string(workload_name) == "needle" ? 512 : 1 << 17);
  const auto r = profiler.profile(w, device, size);
  const auto& m = r.counters;

  EXPECT_GT(r.time_ms, 0.0);
  EXPECT_GE(m.at("inst_issued"), m.at("inst_executed") * 0.99);
  EXPECT_GE(m.at("branch"), m.at("divergent_branch"));
  EXPECT_GT(m.at("ipc"), 0.0);
  // Peak executed IPC per SM: one instruction per dispatch slot.
  const double ipc_cap = device.arch().warp_schedulers_per_sm *
                         device.arch().dispatch_units_per_scheduler;
  EXPECT_LE(m.at("ipc"), ipc_cap * 1.01);
  EXPECT_GT(m.at("achieved_occupancy"), 0.0);
  EXPECT_LE(m.at("achieved_occupancy"), 1.0 + 1e-9);
  EXPECT_GT(m.at("warp_execution_efficiency"), 0.0);
  EXPECT_LE(m.at("warp_execution_efficiency"), 1.0 + 1e-9);
  EXPECT_GE(m.at("inst_replay_overhead"), 0.0);
  EXPECT_LE(m.at("issue_slot_utilization"), 1.0 + 1e-9);
  EXPECT_GE(m.at("gld_efficiency"), 0.0);
  EXPECT_LE(m.at("gld_efficiency"), 1.01);
  // Requested bytes can never exceed moved bytes.
  EXPECT_LE(m.at("gld_requested_throughput"),
            m.at("gld_throughput") * 1.01);
  // Generation-specific counter availability.
  const bool fermi =
      device.arch().generation == gpusim::Generation::kFermi;
  EXPECT_EQ(m.count("l1_shared_bank_conflict"), fermi ? 1u : 0u);
  EXPECT_EQ(m.count("shared_load_replay"), fermi ? 0u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadArchSweep,
    ::testing::Combine(::testing::Values("reduce0", "reduce1", "reduce2",
                                         "reduce6", "matrixMul", "needle",
                                         "vecAdd", "transpose_naive",
                                         "stencil5"),
                       ::testing::Values("gtx580", "k20m")));

// ---- time monotonicity in problem size ----

class SizeMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(SizeMonotonicity, LargerProblemsNeverFaster) {
  const Device device(gpusim::gtx580());
  profiling::ProfilerOptions opts;
  opts.time_noise_sd = 0.0;
  opts.counter_noise_sd = 0.0;
  profiling::Profiler profiler(opts);
  const auto w = profiling::workload_by_name(GetParam());
  const bool matrix_like = std::string(GetParam()) == "matrixMul";
  const std::vector<double> sizes =
      matrix_like ? std::vector<double>{64, 128, 256, 512}
                  : std::vector<double>{1 << 14, 1 << 16, 1 << 18, 1 << 20};
  double prev = 0.0;
  for (const double s : sizes) {
    const double t = profiler.profile(w, device, s).time_ms;
    EXPECT_GE(t, prev * 0.999) << "size " << s;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SizeMonotonicity,
                         ::testing::Values("reduce1", "reduce6", "vecAdd",
                                           "matrixMul"));

// ---- occupancy / latency hiding ----

class BlockSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockSizeSweep, ReductionRunsAtAnyPowerOfTwoBlock) {
  const int block = GetParam();
  const Device device(gpusim::gtx580());
  const auto agg = kernels::simulate_reduction(device, 2, 1 << 18, block);
  EXPECT_GT(agg.time_ms, 0.0);
  EXPECT_GT(agg.counters.get(Event::kInstExecuted), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(64, 128, 256, 512, 1024));

TEST(LatencyHiding, OccupancyImprovesStreamingThroughput) {
  // vecAdd with tiny blocks (low occupancy) vs big blocks: same work,
  // the low-occupancy variant must not be faster.
  const Device device(gpusim::gtx580());
  const std::int64_t n = 1 << 20;
  gpusim::AggregateResult small;
  small.add(device.run(kernels::VecAddKernel(n, 64)));
  gpusim::AggregateResult big;
  big.add(device.run(kernels::VecAddKernel(n, 256)));
  EXPECT_LE(big.time_ms, small.time_ms * 1.05);
}

// ---- exact metric-derivation formulas on a synthetic counter set ----

TEST(DeriveMetrics, ExactFormulas) {
  gpusim::CounterSet c;
  c.set(Event::kInstExecuted, 1000);
  c.set(Event::kInstIssued, 1200);
  c.set(Event::kThreadInstExecuted, 1000 * 24);  // 24 active lanes avg
  c.set(Event::kActiveCycles, 2000);
  c.set(Event::kActiveWarpCycles, 2000 * 12);    // 12 resident warps avg
  c.set(Event::kIssueSlotsTotal, 4000);
  c.set(Event::kSharedBankConflict, 50);
  c.set(Event::kGlobalLoadBytesRequested, 1e6);
  c.set(Event::kGlobalLoadTransaction, 10000);   // 10000*128 B moved
  c.set(Event::kGlobalStoreTransaction, 2000);   // 2000*32 B moved
  c.set(Event::kGlobalStoreBytesRequested, 48000);
  c.set(Event::kL2ReadTransactions, 4000);
  c.set(Event::kDramReadTransactions, 1000);
  c.set(Event::kElapsedCycles, 3000);

  const auto arch = gpusim::gtx580();
  const double time_ms = 2.0;  // => 2e-3 s
  const auto m = profiling::Profiler::derive_metrics(arch, c, time_ms);

  EXPECT_DOUBLE_EQ(m.at("ipc"), 1000.0 / 2000.0);
  EXPECT_DOUBLE_EQ(m.at("issue_slot_utilization"), 1200.0 / 4000.0);
  EXPECT_DOUBLE_EQ(m.at("achieved_occupancy"), 12.0 / 48.0);
  EXPECT_DOUBLE_EQ(m.at("warp_execution_efficiency"), 24.0 / 32.0);
  EXPECT_DOUBLE_EQ(m.at("inst_replay_overhead"), 200.0 / 1000.0);
  EXPECT_DOUBLE_EQ(m.at("shared_replay_overhead"), 50.0 / 1000.0);
  // 1e6 bytes over 2e-3 s = 5e8 B/s = 0.5 GB/s.
  EXPECT_DOUBLE_EQ(m.at("gld_requested_throughput"), 0.5);
  // 10000 * 128 B over 2e-3 s = 6.4e8 B/s.
  EXPECT_DOUBLE_EQ(m.at("gld_throughput"), 0.64);
  EXPECT_NEAR(m.at("gld_efficiency"), 1e6 / (10000.0 * 128.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.at("gst_throughput"), 2000.0 * 32.0 / 2e-3 * 1e-9);
  EXPECT_DOUBLE_EQ(m.at("l2_read_throughput"),
                   4000.0 * 32.0 / 2e-3 * 1e-9);
  EXPECT_DOUBLE_EQ(m.at("dram_read_throughput"),
                   1000.0 * 32.0 / 2e-3 * 1e-9);
}

TEST(DeriveMetrics, KeplerFiltersFermiCounters) {
  gpusim::CounterSet c;
  c.set(Event::kInstExecuted, 10);
  c.set(Event::kActiveCycles, 10);
  const auto m =
      profiling::Profiler::derive_metrics(gpusim::kepler_k20m(), c, 1.0);
  EXPECT_EQ(m.count("l1_shared_bank_conflict"), 0u);
  EXPECT_EQ(m.count("shared_load_replay"), 1u);
  EXPECT_EQ(m.count("shared_store_replay"), 1u);
}

// ---- NW strip interpolation fidelity ----

TEST(NwSampling, InterpolatedTotalsCloseToExhaustive) {
  // For a small problem the ladder covers every width, so sampling and
  // exhaustive execution must agree exactly; for a larger one, closely.
  const Device device(gpusim::gtx580());
  const auto small = kernels::simulate_nw(device, 128);  // 8 strips: exact
  EXPECT_EQ(small.launches, 15);
  const auto mid = kernels::simulate_nw(device, 1024);
  // Total tiles = 64^2; each tile does 16 coalesced ref-row loads + 3
  // matrix loads + writeback: gld_request scales with tiles.
  const double tiles = 64.0 * 64.0;
  const double per_tile_requests =
      mid.counters.get(Event::kGldRequest) / tiles;
  EXPECT_GT(per_tile_requests, 15.0);
  EXPECT_LT(per_tile_requests, 25.0);
}

}  // namespace
}  // namespace bf
