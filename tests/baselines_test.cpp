// Tests for the related-work baselines (stepwise regression — Stargazer;
// model-pool parametric regression — Eiger) and the §7 prediction-
// interval extension of the forest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "ml/model_pool.hpp"
#include "ml/stepwise.hpp"

namespace bf::ml {
namespace {

// ---- stepwise regression ----

struct StepwiseProblem {
  linalg::Matrix x;
  std::vector<double> y;
  std::vector<std::string> names;
};

/// y = 4 + 3*x0 - 2*x2 + noise; x1 and x3 are irrelevant.
StepwiseProblem make_stepwise_problem(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  StepwiseProblem prob{linalg::Matrix(n, 4), std::vector<double>(n),
                       {"a", "b", "c", "d"}};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) prob.x(i, j) = rng.uniform(0, 10);
    prob.y[i] =
        4.0 + 3.0 * prob.x(i, 0) - 2.0 * prob.x(i, 2) + rng.normal(0, 0.3);
  }
  return prob;
}

TEST(Stepwise, SelectsExactlyTheInformativeVariables) {
  const auto prob = make_stepwise_problem(80, 1);
  StepwiseRegression sw;
  sw.fit(prob.x, prob.y, prob.names, {});
  auto sel = sw.selected();
  std::sort(sel.begin(), sel.end());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], "a");
  EXPECT_EQ(sel[1], "c");
  EXPECT_GT(sw.r_squared(), 0.99);
}

TEST(Stepwise, FirstSelectedIsStrongestEffect) {
  const auto prob = make_stepwise_problem(80, 2);
  StepwiseRegression sw;
  sw.fit(prob.x, prob.y, prob.names, {});
  // |3| > |-2|: "a" enters first — the Stargazer influence ranking.
  EXPECT_EQ(sw.selected().front(), "a");
}

TEST(Stepwise, PredictsAccurately) {
  const auto train = make_stepwise_problem(80, 3);
  const auto test = make_stepwise_problem(30, 4);
  StepwiseRegression sw;
  sw.fit(train.x, train.y, train.names, {});
  const auto pred = sw.predict(test.x);
  EXPECT_GT(r2(test.y, pred), 0.98);
}

TEST(Stepwise, BicIsMoreConservative) {
  // With mild noise variables, BIC should never select more than AIC.
  const auto prob = make_stepwise_problem(40, 5);
  StepwiseRegression aic;
  StepwiseParams pa;
  pa.criterion = StepwiseCriterion::kAic;
  aic.fit(prob.x, prob.y, prob.names, pa);
  StepwiseRegression bic;
  StepwiseParams pb;
  pb.criterion = StepwiseCriterion::kBic;
  bic.fit(prob.x, prob.y, prob.names, pb);
  EXPECT_LE(bic.selected().size(), aic.selected().size());
}

TEST(Stepwise, MaxVariablesCapRespected) {
  const auto prob = make_stepwise_problem(80, 6);
  StepwiseParams params;
  params.max_variables = 1;
  StepwiseRegression sw;
  sw.fit(prob.x, prob.y, prob.names, params);
  EXPECT_EQ(sw.selected().size(), 1u);
}

TEST(Stepwise, InputValidation) {
  StepwiseRegression sw;
  linalg::Matrix x(2, 2);
  EXPECT_THROW(sw.fit(x, {1.0, 2.0}, {"a", "b"}, {}), Error);  // n < 3
  const double row[2] = {0, 0};
  EXPECT_THROW(sw.predict_row(row, 2), Error);  // unfitted
}

// ---- model-pool regression (Eiger) ----

TEST(ModelPool, RecoversCubicLaw) {
  // time ~ c * n^3: the pool must pick cube(n).
  linalg::Matrix x(16, 1);
  std::vector<double> y(16);
  for (std::size_t i = 0; i < 16; ++i) {
    const double n = 32.0 * static_cast<double>(i + 1);
    x(i, 0) = n;
    y[i] = 2e-9 * n * n * n + 0.001;
  }
  ModelPoolRegression mp;
  mp.fit(x, y, {"n"}, {});
  EXPECT_GT(mp.r_squared(), 0.9999);
  EXPECT_NE(mp.to_string().find("cube(n)"), std::string::npos);
  // Extrapolate a step beyond the range: a correct analytical form keeps
  // working where a forest would flatline.
  const double probe[1] = {600.0};
  EXPECT_NEAR(mp.predict_row(probe, 1), 2e-9 * 600 * 600 * 600 + 0.001,
              0.05 * (2e-9 * 600 * 600 * 600));
}

TEST(ModelPool, RecoversLogLaw) {
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    const double n = 64.0 * static_cast<double>(i + 1);
    x(i, 0) = n;
    y[i] = 5.0 + 3.0 * std::log2(n + 1.0);
  }
  ModelPoolRegression mp;
  mp.fit(x, y, {"n"}, {});
  EXPECT_GT(mp.r_squared(), 0.999);
  EXPECT_NE(mp.to_string().find("log2(n)"), std::string::npos);
}

TEST(ModelPool, MultiVariableComposition) {
  Rng rng(7);
  linalg::Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(1, 100);
    x(i, 1) = rng.uniform(1, 100);
    y[i] = 0.01 * x(i, 0) * x(i, 0) + 2.0 * std::sqrt(x(i, 1)) +
           rng.normal(0, 0.1);
  }
  ModelPoolRegression mp;
  mp.fit(x, y, {"u", "v"}, {});
  EXPECT_GT(mp.r_squared(), 0.99);
}

TEST(ModelPool, TermBudgetRespected) {
  Rng rng(8);
  linalg::Matrix x(40, 3);
  std::vector<double> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(1, 50);
    y[i] = x(i, 0) + x(i, 1) * x(i, 1) + std::log2(x(i, 2) + 1);
  }
  ModelPoolParams params;
  params.max_terms = 2;
  ModelPoolRegression mp;
  mp.fit(x, y, {"a", "b", "c"}, params);
  // to_string lists at most max_terms terms beyond the intercept.
  const std::string s = mp.to_string();
  EXPECT_LE(static_cast<std::size_t>(
                std::count(s.begin(), s.end(), '(')),
            2u);
}

TEST(ModelPool, BasisHelpers) {
  EXPECT_DOUBLE_EQ(basis_eval(BasisKind::kSquare, 3.0), 9.0);
  EXPECT_DOUBLE_EQ(basis_eval(BasisKind::kSqrt, 16.0), 4.0);
  EXPECT_DOUBLE_EQ(basis_eval(BasisKind::kLog2, 7.0), 3.0);
  EXPECT_STREQ(basis_name(BasisKind::kCube), "cube");
}

// ---- forest prediction intervals ----

TEST(ForestIntervals, BandContainsMeanAndOrdersCorrectly) {
  Rng rng(9);
  linalg::Matrix x(150, 2);
  std::vector<double> y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = 3.0 * x(i, 0) + rng.normal(0, 1.0);
  }
  RandomForest rf;
  ForestParams params;
  params.n_trees = 150;
  params.seed = 5;
  rf.fit(x, y, {"s", "n"}, params);

  const double row[2] = {5.0, 5.0};
  const auto interval = rf.predict_interval(row, 0.1);
  EXPECT_LE(interval.lo, interval.mean);
  EXPECT_GE(interval.hi, interval.mean);
  EXPECT_NEAR(interval.mean, rf.predict_row(row), 1e-9);
  EXPECT_GT(interval.hi - interval.lo, 0.0);
}

TEST(ForestIntervals, WiderAlphaGivesNarrowerBand) {
  Rng rng(10);
  linalg::Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    y[i] = x(i, 0) + rng.normal(0, 2.0);
  }
  RandomForest rf;
  ForestParams params;
  params.n_trees = 200;
  rf.fit(x, y, {"x"}, params);
  const double row[1] = {5.0};
  const auto narrow = rf.predict_interval(row, 0.5);   // 50% band
  const auto wide = rf.predict_interval(row, 0.05);    // 95% band
  EXPECT_LE(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(ForestIntervals, PartialDependenceWithBand) {
  Rng rng(11);
  linalg::Matrix x(120, 2);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = 2.0 * x(i, 0) + rng.normal(0, 0.5);
  }
  RandomForest rf;
  ForestParams params;
  params.n_trees = 120;
  rf.fit(x, y, {"s", "noise"}, params);
  const auto curve = rf.partial_dependence_interval("s", 10, 0.1);
  ASSERT_EQ(curve.size(), 10u);
  for (const auto& p : curve) {
    EXPECT_LE(p.y.lo, p.y.mean + 1e-9);
    EXPECT_GE(p.y.hi, p.y.mean - 1e-9);
  }
  // The band's means must match the plain partial dependence curve.
  const auto plain = rf.partial_dependence("s", 10);
  for (std::size_t g = 0; g < curve.size(); ++g) {
    EXPECT_NEAR(curve[g].y.mean, plain[g].y, 1e-9);
    EXPECT_NEAR(curve[g].x, plain[g].x, 1e-12);
  }
}

TEST(ForestIntervals, InvalidAlphaRejected) {
  Rng rng(12);
  linalg::Matrix x(20, 1);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  RandomForest rf;
  ForestParams params;
  params.n_trees = 10;
  rf.fit(x, y, {"x"}, params);
  const double row[1] = {5.0};
  EXPECT_THROW(rf.predict_interval(row, 0.0), Error);
  EXPECT_THROW(rf.predict_interval(row, 1.0), Error);
}

}  // namespace
}  // namespace bf::ml
