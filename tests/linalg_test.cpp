// Tests for bf::linalg: Matrix, Cholesky/QR solvers, Jacobi eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace bf::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 3), Error);
}

TEST(Matrix, InitializerListAndTranspose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, IdentityNeutral) {
  Rng rng(1);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.normal();
  }
  const Matrix i4 = Matrix::identity(4);
  EXPECT_LT(Matrix::max_abs_diff(a * i4, a), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(i4 * a, a), 1e-12);
}

TEST(Matrix, ApplyMatchesMultiply) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> x{10, 20};
  const auto y = a.apply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 50.0);
  EXPECT_DOUBLE_EQ(y[2], 170.0);
}

TEST(Matrix, ColumnAccessors) {
  Matrix m{{1, 2}, {3, 4}};
  const auto c1 = m.column_vec(1);
  EXPECT_DOUBLE_EQ(c1[0], 2.0);
  EXPECT_DOUBLE_EQ(c1[1], 4.0);
  m.set_column(0, {9, 8});
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW(dot({1}, {1, 2}), Error);
}

// ---- Cholesky ----

TEST(Cholesky, SolvesKnownSpdSystem) {
  const Matrix a{{4, 2}, {2, 3}};
  const auto x = cholesky_solve(a, {10, 9});
  // Solution of [[4,2],[2,3]] x = [10,9] is x = [1.5, 2].
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_solve(a, {1, 1}), Error);
}

TEST(Cholesky, RandomSpdRoundTrip) {
  Rng rng(2);
  const std::size_t n = 6;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  const Matrix a = b.transpose() * b + Matrix::identity(n) * 0.5;
  std::vector<double> truth(n);
  for (auto& v : truth) v = rng.normal();
  const auto rhs = a.apply(truth);
  const auto x = cholesky_solve(a, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], truth[i], 1e-9);
  }
}

// ---- QR least squares ----

TEST(QrLeastSquares, ExactOnConsistentSystem) {
  // y = 2 + 3x sampled without noise.
  Matrix a(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = i;
    y[static_cast<std::size_t>(i)] = 2.0 + 3.0 * i;
  }
  const auto sol = qr_least_squares(a, y);
  EXPECT_EQ(sol.rank, 2u);
  EXPECT_NEAR(sol.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(sol.coefficients[1], 3.0, 1e-10);
  EXPECT_NEAR(sol.residual_norm, 0.0, 1e-9);
}

TEST(QrLeastSquares, MinimisesResidual) {
  // Overdetermined noisy system: residual must beat small perturbations.
  Rng rng(3);
  Matrix a(20, 3);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = rng.normal();
    a(i, 2) = rng.normal();
    y[i] = 1.0 + 0.5 * a(i, 1) - 2.0 * a(i, 2) + 0.1 * rng.normal();
  }
  const auto sol = qr_least_squares(a, y);
  const auto residual_of = [&](const std::vector<double>& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
      const double pred = c[0] * a(i, 0) + c[1] * a(i, 1) + c[2] * a(i, 2);
      acc += (y[i] - pred) * (y[i] - pred);
    }
    return std::sqrt(acc);
  };
  const double base = residual_of(sol.coefficients);
  EXPECT_NEAR(base, sol.residual_norm, 1e-9);
  for (std::size_t j = 0; j < 3; ++j) {
    auto perturbed = sol.coefficients;
    perturbed[j] += 0.01;
    EXPECT_GE(residual_of(perturbed), base);
  }
}

TEST(QrLeastSquares, RankDeficientColumnsGetZero) {
  // Third column duplicates the second: rank 2.
  Matrix a(6, 3);
  std::vector<double> y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = static_cast<double>(i);
    a(i, 2) = static_cast<double>(i);
    y[i] = 1.0 + 2.0 * static_cast<double>(i);
  }
  const auto sol = qr_least_squares(a, y);
  EXPECT_EQ(sol.rank, 2u);
  // The fit itself must still be exact.
  for (std::size_t i = 0; i < 6; ++i) {
    const double pred = sol.coefficients[0] + sol.coefficients[1] * a(i, 1) +
                        sol.coefficients[2] * a(i, 2);
    EXPECT_NEAR(pred, y[i], 1e-9);
  }
}

// ---- Jacobi eigensolver ----

TEST(Eigen, Known2x2) {
  const Matrix a{{2, 1}, {1, 2}};  // eigenvalues 3 and 1
  const auto res = symmetric_eigen(a);
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_NEAR(res.values[0], 3.0, 1e-10);
  EXPECT_NEAR(res.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(res.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(Eigen, DiagonalMatrixSortedDescending) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const auto res = symmetric_eigen(a);
  EXPECT_NEAR(res.values[0], 5.0, 1e-12);
  EXPECT_NEAR(res.values[1], 3.0, 1e-12);
  EXPECT_NEAR(res.values[2], 1.0, 1e-12);
}

TEST(Eigen, NonSquareRejected) {
  EXPECT_THROW(symmetric_eigen(Matrix(2, 3)), Error);
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ReconstructionAndOrthonormality) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  }
  const Matrix a = (b + b.transpose()) * 0.5;
  const auto res = symmetric_eigen(a);

  // V^T V = I.
  const Matrix vtv = res.vectors.transpose() * res.vectors;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(b.rows())), 1e-8);

  // V diag(lambda) V^T = A.
  Matrix lam(b.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < res.values.size(); ++i) {
    lam(i, i) = res.values[i];
  }
  const Matrix recon = res.vectors * lam * res.vectors.transpose();
  EXPECT_LT(Matrix::max_abs_diff(recon, a), 1e-8);

  // Eigenvalues sorted descending.
  for (std::size_t i = 1; i < res.values.size(); ++i) {
    EXPECT_GE(res.values[i - 1], res.values[i] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace bf::linalg
