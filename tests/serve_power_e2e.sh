#!/bin/sh
# End-to-end power serving test: export one bundle with the v3 power
# record (--power --export-model) and one without, then drive bf_serve
# and check that replies carry power_w/energy_j/power_grade exactly when
# the bundle does, and that stats advertises the record. Run by ctest as
#   serve_power_e2e.sh <bf_analyze> <bf_serve>
set -eu

BF_ANALYZE=$1
BF_SERVE=$2
WORK=$(mktemp -d "${TMPDIR:-/tmp}/bf_power_e2e.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "serve_power_e2e: FAIL: $1" >&2
  exit 1
}

# --- export: one powered bundle, one time-only bundle ---
"$BF_ANALYZE" --workload reduce1 --runs 10 --trees 40 \
    --min 16384 --max 1048576 --power \
    --export-model "$WORK/powered.bfmodel" > "$WORK/analyze_out" \
    || fail "bf_analyze --power --export-model exited non-zero"
grep -q "energy bottlenecks" "$WORK/analyze_out" \
    || fail "--power did not print an energy bottleneck ranking"
"$BF_ANALYZE" --workload reduce1 --runs 10 --trees 40 \
    --min 16384 --max 1048576 --no-power \
    --export-model "$WORK/plain.bfmodel" >/dev/null \
    || fail "bf_analyze --no-power --export-model exited non-zero"

# --- drive the server over both bundles ---
cat > "$WORK/requests" <<'EOF'
{"model":"powered","size":65536,"id":1}
{"model":"plain","size":65536,"id":2}
{"cmd":"stats"}
EOF
"$BF_SERVE" --model-dir "$WORK" < "$WORK/requests" > "$WORK/replies" \
    || fail "bf_serve exited non-zero"
[ "$(wc -l < "$WORK/replies")" -eq 3 ] || fail "expected 3 reply lines"

line() { sed -n "${1}p" "$WORK/replies"; }

# Reply 1: a good prediction carrying the power fields.
case "$(line 1)" in
  *'"ok":true'*'"predicted_ms":'*'"power_w":'*'"energy_j":'*'"power_grade":"'*) ;;
  *) fail "powered reply lacks power fields: $(line 1)" ;;
esac

# Reply 2: still a good prediction, but with no power fields at all.
case "$(line 2)" in
  *'"power_w"'*) fail "powerless reply leaked power fields: $(line 2)" ;;
  *'"ok":true'*'"predicted_ms":'*) ;;
  *) fail "powerless reply is not a good prediction: $(line 2)" ;;
esac

# Stats: the registry advertises which bundle carries the v3 record.
case "$(line 3)" in
  *'"name":"powered"'*'"power":true'*) ;;
  *) fail "stats does not flag the powered bundle: $(line 3)" ;;
esac
case "$(line 3)" in
  *'"name":"plain"'*'"power":false'*) ;;
  *) fail "stats does not flag the plain bundle: $(line 3)" ;;
esac

echo "serve_power_e2e: PASS"
