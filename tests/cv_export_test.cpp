// Tests for k-fold cross-validation and the figure-export helpers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "ml/cv.hpp"
#include "ml/metrics.hpp"
#include "ml/forest.hpp"
#include "ml/linear_model.hpp"
#include "report/export.hpp"

namespace bf {
namespace {

ml::Dataset make_linear_ds(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0, 10);
    y[i] = 2.0 + 3.0 * x[i] + rng.normal(0, 0.2);
  }
  ml::Dataset ds;
  ds.add_column("x", x);
  ds.add_column("y", y);
  return ds;
}

TEST(KfoldCv, CoversEveryRowExactlyOnce) {
  const auto ds = make_linear_ds(53, 1);
  Rng rng(2);
  const auto cv = ml::kfold_cv(
      ds, "y", 5, rng, [](const ml::Dataset& train, const ml::Dataset& test) {
        ml::Glm glm;
        ml::GlmParams p;
        p.degree = 1;
        p.log_terms = false;
        glm.fit(train.to_matrix({"x"}), train.column("y"), p);
        return glm.predict(test.to_matrix({"x"}));
      });
  EXPECT_EQ(cv.fold_mse.size(), 5u);
  for (const double p : cv.predictions) {
    EXPECT_FALSE(std::isnan(p)) << "row never predicted";
  }
  // Linear model on linear data: tiny CV error.
  EXPECT_LT(cv.mean_mse, 0.1);
  EXPECT_GE(cv.sd_mse, 0.0);
}

TEST(KfoldCv, ForestBeatsMeanPredictorOutOfFold) {
  const auto ds = make_linear_ds(80, 3);
  Rng rng(4);
  const auto cv = ml::kfold_cv(
      ds, "y", 4, rng, [](const ml::Dataset& train, const ml::Dataset& test) {
        ml::RandomForest rf;
        ml::ForestParams p;
        p.n_trees = 60;
        p.importance = false;
        rf.fit(train.to_matrix({"x"}), train.column("y"), {"x"}, p);
        return rf.predict(test.to_matrix({"x"}));
      });
  EXPECT_LT(cv.mean_mse, ml::variance(ds.column("y")) * 0.2);
}

TEST(KfoldCv, Validation) {
  const auto ds = make_linear_ds(10, 5);
  Rng rng(6);
  const auto noop = [](const ml::Dataset&, const ml::Dataset& test) {
    return std::vector<double>(test.num_rows(), 0.0);
  };
  EXPECT_THROW(ml::kfold_cv(ds, "y", 1, rng, noop), Error);
  EXPECT_THROW(ml::kfold_cv(ds, "missing", 3, rng, noop), Error);
  EXPECT_THROW(ml::kfold_cv(ds, "y", 11, rng, noop), Error);
  // Wrong-sized prediction vector is rejected.
  const auto bad = [](const ml::Dataset&, const ml::Dataset&) {
    return std::vector<double>{1.0};
  };
  EXPECT_THROW(ml::kfold_cv(ds, "y", 3, rng, bad), Error);
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bf_export_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(ExportTest, SeriesCsvRoundTrips) {
  report::Series a{"measured", {1, 2, 4}, {10, 20, 40}};
  report::Series b{"predicted", {1, 2, 4}, {11, 19, 41}};
  report::export_series_csv(path("s.csv"), {a, b});
  const auto table = CsvTable::load(path("s.csv"));
  EXPECT_EQ(table.header(),
            (std::vector<std::string>{"x", "measured", "predicted"}));
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(table.cell_as_double(2, "predicted"), 41.0);
}

TEST_F(ExportTest, SeriesMustShareGrid) {
  report::Series a{"a", {1, 2}, {1, 2}};
  report::Series b{"b", {1, 3}, {1, 2}};
  EXPECT_THROW(report::export_series_csv(path("bad.csv"), {a, b}), Error);
  EXPECT_THROW(report::export_series_csv(path("bad.csv"), {}), Error);
}

TEST_F(ExportTest, BarsCsv) {
  report::export_bars_csv(path("b.csv"),
                          {{"shared_load", 5.5}, {"branch", -1.0}});
  const auto table = CsvTable::load(path("b.csv"));
  EXPECT_EQ(table.cell(0, "label"), "shared_load");
  EXPECT_DOUBLE_EQ(table.cell_as_double(1, "value"), -1.0);
}

TEST_F(ExportTest, MetricsJson) {
  report::export_metrics_json(path("m.json"),
                              {{"mse", 3.25}, {"expl_var", 0.5}});
  std::ifstream is(path("m.json"));
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"mse\": 3.25"), std::string::npos);
  EXPECT_NE(all.find("\"expl_var\": 0.5"), std::string::npos);
  EXPECT_EQ(all.front(), '{');
  EXPECT_EQ(all[all.size() - 2], '}');
}

}  // namespace
}  // namespace bf
