// Tests for the CART regression tree.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"

namespace bf::ml {
namespace {

linalg::Matrix column_matrix(const std::vector<double>& x) {
  linalg::Matrix m(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) m(i, 0) = x[i];
  return m;
}

TEST(RegressionTree, ConstantResponseSingleLeaf) {
  const auto x = column_matrix({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const std::vector<double> y(10, 3.5);
  RegressionTree tree;
  Rng rng(1);
  tree.fit(x, y, TreeParams{}, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(x)[0], 3.5);
}

TEST(RegressionTree, RecoversStepFunction) {
  // y = 0 for x < 5.5, 10 for x >= 5.5 — one split should nail it.
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    y.push_back(i < 10 ? 0.0 : 10.0);
  }
  const auto x = column_matrix(xs);
  RegressionTree tree;
  Rng rng(2);
  TreeParams params;
  params.min_node_size = 5;
  tree.fit(x, y, params, rng);
  const auto pred = tree.predict(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(pred[i], y[i]);
  }
}

TEST(RegressionTree, MinNodeSizeRespected) {
  std::vector<double> xs;
  std::vector<double> y;
  Rng noise(3);
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i);
    y.push_back(i + noise.normal());
  }
  const auto x = column_matrix(xs);
  TreeParams params;
  params.min_node_size = 10;
  RegressionTree tree;
  Rng rng(4);
  tree.fit(x, y, params, rng);
  // 40 samples with min node 10 allows at most 4 leaves.
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(RegressionTree, MaxDepthLimits) {
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(i);
    y.push_back(i);
  }
  const auto x = column_matrix(xs);
  TreeParams params;
  params.min_node_size = 1;
  params.max_depth = 3;
  RegressionTree tree;
  Rng rng(5);
  tree.fit(x, y, params, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1, three splits below
  EXPECT_LE(tree.leaf_count(), 8u);
}

TEST(RegressionTree, PredictionIsTrainMeanPerLeaf) {
  // With a giant min_node_size the tree is a single leaf: the mean.
  const auto x = column_matrix({1, 2, 3, 4});
  const std::vector<double> y{1, 2, 3, 10};
  TreeParams params;
  params.min_node_size = 100;
  RegressionTree tree;
  Rng rng(6);
  tree.fit(x, y, params, rng);
  EXPECT_DOUBLE_EQ(tree.predict(x)[0], 4.0);
}

TEST(RegressionTree, ImpurityImportanceOnInformativeFeature) {
  // Feature 0 is pure noise, feature 1 determines the response.
  Rng rng(7);
  linalg::Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = static_cast<double>(i);
    y[i] = (i < 30) ? 0.0 : 5.0;
  }
  RegressionTree tree;
  Rng fit_rng(8);
  tree.fit(x, y, TreeParams{}, fit_rng);
  const auto imp = tree.impurity_importance(2);
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], 0.0);
}

TEST(RegressionTree, BootstrapSampleFit) {
  const auto x = column_matrix({1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<double> y{1, 1, 1, 1, 9, 9, 9, 9};
  // Sample only the low half (with repetition): tree must predict ~1.
  RegressionTree tree;
  Rng rng(9);
  tree.fit(x, y, {0, 1, 2, 3, 0, 1, 2, 3}, TreeParams{}, rng);
  EXPECT_DOUBLE_EQ(tree.predict_row(x.row_ptr(7)), 1.0);
}

TEST(RegressionTree, PruneCollapsesNoiseSplits) {
  // Step signal plus noise: a deep tree overfits; pruning with an alpha
  // between the noise-split gains and the signal-split gain must keep
  // the step and drop the noise.
  Rng noise(21);
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    xs.push_back(i);
    y.push_back((i < 40 ? 0.0 : 100.0) + noise.normal(0.0, 1.0));
  }
  const auto x = column_matrix(xs);
  TreeParams params;
  params.min_node_size = 2;
  RegressionTree tree;
  Rng rng(22);
  tree.fit(x, y, params, rng);
  const std::size_t leaves_before = tree.leaf_count();
  ASSERT_GT(leaves_before, 2u);  // overfit as expected

  const std::size_t collapsed = tree.prune(/*alpha=*/500.0);
  EXPECT_GT(collapsed, 0u);
  EXPECT_LT(tree.leaf_count(), leaves_before);
  EXPECT_GE(tree.leaf_count(), 2u);  // the step split survives
  // Predictions still recover the step.
  const double lo[1] = {10.0};
  const double hi[1] = {70.0};
  EXPECT_NEAR(tree.predict_row(lo), 0.0, 2.0);
  EXPECT_NEAR(tree.predict_row(hi), 100.0, 2.0);
}

TEST(RegressionTree, PruneEverythingGivesSingleLeaf) {
  std::vector<double> xs;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    y.push_back(i);
  }
  const auto x = column_matrix(xs);
  TreeParams params;
  params.min_node_size = 2;
  RegressionTree tree;
  Rng rng(23);
  tree.fit(x, y, params, rng);
  tree.prune(1e12);  // absurd alpha: nothing is worth keeping
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{5.0}.data()), 14.5,
              1e-9);
}

TEST(RegressionTree, PruneZeroAlphaIsNoop) {
  std::vector<double> xs;
  std::vector<double> y;
  Rng noise(24);
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i);
    y.push_back(noise.normal());
  }
  const auto x = column_matrix(xs);
  RegressionTree tree;
  Rng rng(25);
  tree.fit(x, y, TreeParams{}, rng);
  const std::size_t leaves = tree.leaf_count();
  EXPECT_EQ(tree.prune(0.0), 0u);
  EXPECT_EQ(tree.leaf_count(), leaves);
}

TEST(RegressionTree, UnfittedPredictThrows) {
  RegressionTree tree;
  const double row[1] = {0.0};
  EXPECT_THROW(tree.predict_row(row), Error);
}

class TreeParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeParamSweep, FitQualityImprovesWithFinerLeaves) {
  const auto [min_node, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  linalg::Matrix x(120, 2);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x(i, 0) = rng.uniform(0, 10);
    x(i, 1) = rng.uniform(0, 10);
    y[i] = std::sin(x(i, 0)) + 0.3 * x(i, 1);
  }
  TreeParams params;
  params.min_node_size = static_cast<std::size_t>(min_node);
  RegressionTree tree;
  Rng fit_rng(11);
  tree.fit(x, y, params, fit_rng);
  const double fit_mse = mse(y, tree.predict(x));

  // Training error is bounded by the response variance (a single-leaf
  // tree achieves exactly that), and shrinks with smaller min_node.
  EXPECT_LE(fit_mse, variance(y) + 1e-12);
  if (min_node <= 2) {
    EXPECT_LT(fit_mse, 0.1 * variance(y));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, TreeParamSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 10, 25),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace bf::ml
