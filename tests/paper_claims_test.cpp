// Integration locks on the paper's headline claims, so a regression in
// any substrate that would silently change the reproduction story fails
// CI (EXPERIMENTS.md documents the full-size versions).
#include <gtest/gtest.h>

#include "core/predictor.hpp"
#include "kernels/matmul.hpp"
#include "kernels/nw.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

namespace bf {
namespace {

/// Small MM sweeps (to n=512) on both paper GPUs, cached per process.
const ml::Dataset& mm_sweep(const std::string& arch) {
  static std::map<std::string, ml::Dataset> cache;
  const auto it = cache.find(arch);
  if (it != cache.end()) return it->second;
  const gpusim::Device device(gpusim::arch_by_name(arch));
  profiling::SweepOptions opt;
  opt.machine_characteristics = true;
  opt.profiler.seed = arch == "gtx580" ? 501 : 502;
  return cache
      .emplace(arch, profiling::sweep(profiling::matmul_workload(), device,
                                      profiling::log2_sizes(32, 512, 16, 16),
                                      opt))
      .first->second;
}

TEST(PaperClaims, Fig7MatMulHardwareScalingIsStraightforward) {
  // §6.2: "The approach works straightforwardly on MM … the most
  // important variables are almost the same on both architectures."
  core::HardwareScalingOptions opt;
  opt.model.forest.n_trees = 200;
  const auto result = core::HardwareScalingPredictor::predict(
      mm_sweep("gtx580"), mm_sweep("k20m"), opt);
  EXPECT_GE(result.similarity, opt.similarity_threshold)
      << "MM importance rankings diverged across generations";
  EXPECT_FALSE(result.used_mixed_variables);
  EXPECT_GT(result.series.explained_variance, 0.6);
}

TEST(PaperClaims, MatMulTile32AlsoSupported) {
  // The SDK sample supports 16 and 32 tiles; both must run and the
  // bigger tile moves fewer global words per FLOP.
  const gpusim::Device device(gpusim::gtx580());
  const auto t16 = kernels::simulate_matmul(device, 256, 16);
  const auto t32 = kernels::simulate_matmul(device, 256, 32);
  EXPECT_LT(t32.counters.get(gpusim::Event::kGldRequest) * 0.9,
            t16.counters.get(gpusim::Event::kGldRequest));
  EXPECT_NEAR(t32.counters.get(gpusim::Event::kFlopCount),
              t16.counters.get(gpusim::Event::kFlopCount),
              0.02 * t16.counters.get(gpusim::Event::kFlopCount));
}

TEST(PaperClaims, NwTraversalsHaveMatchingCost) {
  // The paper averages NW's two kernels; their per-strip behaviour must
  // be statistically identical in our model too.
  const gpusim::Device device(gpusim::gtx580());
  const kernels::NwDiagonalKernel k1(512, 7, 8, 1);
  const kernels::NwDiagonalKernel k2(512, 7, 8, 2);
  const auto r1 = device.run(k1);
  const auto r2 = device.run(k2);
  EXPECT_DOUBLE_EQ(r1.counters.get(gpusim::Event::kInstExecuted),
                   r2.counters.get(gpusim::Event::kInstExecuted));
  EXPECT_NEAR(r1.time_ms, r2.time_ms, 0.15 * r1.time_ms);
}

}  // namespace
}  // namespace bf
