#!/bin/sh
# Chaos e2e: cache thrash under a saturated connection layer. One bundle
# is exported and copied to many model names (the registry keys bundles
# by file name), the server gets a cache far smaller than the model set
# plus a tiny admission queue, and unpaced multi-model traffic hammers
# it so every few requests evict a bundle another connection is about to
# need. The run must complete (no deadlock in the single-flight load
# path while the queue sheds), every request must get an answer, the
# shed fraction must stay bounded, and the registry counters must prove
# both real thrash (evictions happened) and single-flight loading
# (disk loads never exceed cache misses). Run by ctest as
#   serve_cache_thrash_e2e.sh <bf_analyze> <bf_serve> <bf_loadgen>
set -eu

BF_ANALYZE=$1
BF_SERVE=$2
BF_LOADGEN=$3
WORK=$(mktemp -d "${TMPDIR:-/tmp}/bf_cache_thrash.XXXXXX")
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_cache_thrash_e2e: FAIL: $1" >&2
  [ -f "$WORK/serve.log" ] && cat "$WORK/serve.log" >&2
  [ -f "$WORK/stats.json" ] && cat "$WORK/stats.json" >&2
  exit 1
}

# Pull the integer value of "key":N out of a one-line JSON file.
jint() {
  sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" "$1"
}

# --- train once, fan the bundle out to 8 model names ---
"$BF_ANALYZE" --workload reduce1 --runs 8 --trees 30 \
    --min 16384 --max 1048576 \
    --export-model "$WORK/m0.bfmodel" >/dev/null
MODELS=m0
for i in 1 2 3 4 5 6 7; do
  cp "$WORK/m0.bfmodel" "$WORK/m$i.bfmodel"
  MODELS="$MODELS,m$i"
done

# --- server: cache of 2 bundles vs 8 models, tiny admission queue ---
SOCK="$WORK/bf.sock"
"$BF_SERVE" --model-dir "$WORK" --socket "$SOCK" \
    --cache 2 --max-queue 8 --timeout-ms 10000 --drain-ms 3000 \
    2>"$WORK/serve.log" &
SERVE_PID=$!

tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "server never bound $SOCK"
  kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done

# --- unpaced (qps 0) multi-model traffic across 8 connections ---
BENCH="$WORK/bench.json"
STATS="$WORK/stats.json"
"$BF_LOADGEN" --socket "$SOCK" --models "$MODELS" \
    --requests 320 --conns 8 --seed 11 \
    --out "$BENCH" --stats-out "$STATS" >/dev/null \
    || fail "bf_loadgen reported no successful requests"
[ -f "$BENCH" ] || fail "bench.json was not written"
[ -f "$STATS" ] || fail "stats.json was not written"

# --- every request answered: nothing hung, nothing dropped ---
ok=$(jint "$BENCH" ok); shed=$(jint "$BENCH" shed)
errors=$(jint "$BENCH" errors); no_reply=$(jint "$BENCH" no_reply)
[ "$no_reply" -eq 0 ] || fail "$no_reply requests got no reply"
[ "$errors" -eq 0 ] || fail "$errors requests errored"
[ $((ok + shed)) -eq 320 ] || fail "answered $((ok + shed))/320 requests"

# --- bounded shed: overload control may trip, but most traffic lands ---
[ "$ok" -ge 240 ] || fail "only $ok/320 ok (shed fraction above 0.25)"

# --- the cache really thrashed, and loads stayed single-flight ---
misses=$(jint "$STATS" misses); loads=$(jint "$STATS" loads)
evictions=$(jint "$STATS" evictions); failures=$(jint "$STATS" failures)
[ "$evictions" -ge 6 ] || fail "only $evictions evictions; no thrash"
[ "$failures" -eq 0 ] || fail "$failures bundle loads failed"
[ "$loads" -ge 1 ] || fail "stats report no disk loads"
[ "$loads" -le "$misses" ] || fail "loads $loads > misses $misses"

# --- server healthy, then graceful drain ---
kill -0 "$SERVE_PID" 2>/dev/null || fail "server died under thrash"
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "drain exited $rc, want 0"
SERVE_PID=""

echo "serve_cache_thrash_e2e: OK"
