// Tests for the counter-based power model (the §7 extension substrate).
#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/arch.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/power.hpp"
#include "kernels/matmul.hpp"
#include "kernels/reduce.hpp"
#include "profiling/workloads.hpp"

namespace bf::gpusim {
namespace {

// A representative problem size per workload family: element-count
// workloads stream 2^18 items, dimension-based workloads use n = 256.
double probe_size(const std::string& name) {
  if (name.rfind("reduce", 0) == 0 || name == "vecAdd" ||
      name.rfind("histogram", 0) == 0 || name.rfind("spmv", 0) == 0) {
    return static_cast<double>(1 << 18);
  }
  return 256.0;
}

TEST(Power, IdleFloorAndComposition) {
  CounterSet empty;
  const auto p = estimate_power(gtx580(), empty, 1.0);
  EXPECT_DOUBLE_EQ(p.core_w, 0.0);
  EXPECT_DOUBLE_EQ(p.dram_w, 0.0);
  EXPECT_NEAR(p.total_w, p.idle_w, 1e-12);
  EXPECT_GT(p.idle_w, 20.0);
}

TEST(Power, BusyKernelDrawsMoreThanIdle) {
  const Device dev(gtx580());
  const auto agg = kernels::simulate_matmul(dev, 512);
  const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  EXPECT_GT(p.total_w, p.idle_w + 10.0);
  EXPECT_LT(p.total_w, 400.0);  // plausible board power
  EXPECT_GT(p.core_w, 0.0);
  EXPECT_GT(p.dram_w, 0.0);
  EXPECT_NEAR(p.energy_j, p.total_w * agg.time_ms * 1e-3, 1e-9);
}

TEST(Power, MemoryBoundKernelHasHigherDramShare) {
  const Device dev(gtx580());
  const auto mm = kernels::simulate_matmul(dev, 512);       // compute-heavy
  const auto red = kernels::simulate_reduction(dev, 6, 1 << 22);  // streaming
  const auto p_mm = estimate_power(dev.arch(), mm.counters, mm.time_ms);
  const auto p_red = estimate_power(dev.arch(), red.counters, red.time_ms);
  const double mm_dram_share = p_mm.dram_w / p_mm.total_w;
  const double red_dram_share = p_red.dram_w / p_red.total_w;
  EXPECT_GT(red_dram_share, mm_dram_share);
}

TEST(Power, TotalIsSumOfComponents) {
  const Device dev(gtx580());
  const auto agg = kernels::simulate_reduction(dev, 1, 1 << 20);
  const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  EXPECT_NEAR(p.total_w,
              p.idle_w + p.core_w + p.dram_w + p.l2_w + p.shared_w, 1e-9);
}

TEST(Power, ScalesWithActivityNotJustTime) {
  // The same counters over double the time halve the dynamic power.
  const Device dev(gtx580());
  const auto agg = kernels::simulate_matmul(dev, 256);
  const auto fast = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  const auto slow =
      estimate_power(dev.arch(), agg.counters, 2.0 * agg.time_ms);
  EXPECT_NEAR(slow.dram_w, 0.5 * fast.dram_w, 1e-9);
  EXPECT_LT(slow.total_w, fast.total_w);
}

TEST(Power, SaturatesAtBoardPowerLimit) {
  // matrixMul's unthrottled demand exceeds the GTX 580 board limit; the
  // estimate saturates at TDP (power-limit throttling) while the
  // component fields keep the unthrottled demand for attribution.
  const Device dev(gtx580());
  const auto agg = kernels::simulate_matmul(dev, 512);
  const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  const double demand_w = p.idle_w + p.core_w + p.dram_w + p.l2_w + p.shared_w;
  EXPECT_GT(demand_w, dev.arch().tdp_w);
  EXPECT_DOUBLE_EQ(p.total_w, dev.arch().tdp_w);
  EXPECT_NEAR(p.energy_j, dev.arch().tdp_w * agg.time_ms * 1e-3, 1e-9);
}

TEST(Power, EnvelopeHoldsAcrossAllWorkloadsAndArchs) {
  // Physical-envelope property over the whole workload library on both
  // generations: idle floor <= total <= TDP, energy consistent.
  for (const char* arch_name : {"gtx580", "k20m"}) {
    const Device dev(arch_by_name(arch_name));
    for (const auto& w : profiling::all_workloads()) {
      const auto agg = w.run(dev, probe_size(w.name));
      const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
      EXPECT_GE(p.total_w, dev.arch().idle_w - 1e-9)
          << w.name << " on " << arch_name;
      EXPECT_LE(p.total_w, dev.arch().tdp_w + 1e-9)
          << w.name << " on " << arch_name;
      EXPECT_NEAR(p.energy_j, p.total_w * agg.time_ms * 1e-3, 1e-9)
          << w.name << " on " << arch_name;
    }
  }
}

TEST(Power, ComponentsMonotoneInDrivingCounters) {
  // Each power component is non-decreasing in its driving counters, for
  // every workload on both generations — the substrate the energy
  // bottleneck ranking stands on (more traffic never predicts less
  // draw from that unit).
  struct Bump {
    const char* label;
    std::vector<Event> events;
    double PowerBreakdown::*component;
  };
  const std::vector<Bump> bumps = {
      {"dram",
       {Event::kDramReadTransactions, Event::kDramWriteTransactions},
       &PowerBreakdown::dram_w},
      {"l2",
       {Event::kL2ReadTransactions, Event::kL2WriteTransactions},
       &PowerBreakdown::l2_w},
      {"shared",
       {Event::kSharedLoad, Event::kSharedStore, Event::kSharedBankConflict},
       &PowerBreakdown::shared_w},
      {"core", {Event::kInstExecuted}, &PowerBreakdown::core_w},
  };
  for (const char* arch_name : {"gtx580", "k20m"}) {
    const Device dev(arch_by_name(arch_name));
    for (const auto& w : profiling::all_workloads()) {
      const auto agg = w.run(dev, probe_size(w.name));
      const auto base = estimate_power(dev.arch(), agg.counters, agg.time_ms);
      for (const auto& bump : bumps) {
        CounterSet bumped = agg.counters;
        for (const Event e : bump.events) {
          bumped.add(e, 0.25 * bumped.get(e) + 1024.0);
        }
        const auto p = estimate_power(dev.arch(), bumped, agg.time_ms);
        EXPECT_GE(p.*bump.component, base.*bump.component)
            << w.name << " on " << arch_name << ": " << bump.label;
        // min(demand, tdp) keeps the total monotone too.
        EXPECT_GE(p.total_w, base.total_w - 1e-12)
            << w.name << " on " << arch_name << ": " << bump.label;
        EXPECT_LE(p.total_w, dev.arch().tdp_w + 1e-9)
            << w.name << " on " << arch_name << ": " << bump.label;
      }
    }
  }
}

}  // namespace
}  // namespace bf::gpusim
