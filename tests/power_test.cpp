// Tests for the counter-based power model (the §7 extension substrate).
#include <gtest/gtest.h>

#include "gpusim/engine.hpp"
#include "gpusim/power.hpp"
#include "kernels/matmul.hpp"
#include "kernels/reduce.hpp"

namespace bf::gpusim {
namespace {

TEST(Power, IdleFloorAndComposition) {
  CounterSet empty;
  const auto p = estimate_power(gtx580(), empty, 1.0);
  EXPECT_DOUBLE_EQ(p.core_w, 0.0);
  EXPECT_DOUBLE_EQ(p.dram_w, 0.0);
  EXPECT_NEAR(p.total_w, p.idle_w, 1e-12);
  EXPECT_GT(p.idle_w, 20.0);
}

TEST(Power, BusyKernelDrawsMoreThanIdle) {
  const Device dev(gtx580());
  const auto agg = kernels::simulate_matmul(dev, 512);
  const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  EXPECT_GT(p.total_w, p.idle_w + 10.0);
  EXPECT_LT(p.total_w, 400.0);  // plausible board power
  EXPECT_GT(p.core_w, 0.0);
  EXPECT_GT(p.dram_w, 0.0);
  EXPECT_NEAR(p.energy_j, p.total_w * agg.time_ms * 1e-3, 1e-9);
}

TEST(Power, MemoryBoundKernelHasHigherDramShare) {
  const Device dev(gtx580());
  const auto mm = kernels::simulate_matmul(dev, 512);       // compute-heavy
  const auto red = kernels::simulate_reduction(dev, 6, 1 << 22);  // streaming
  const auto p_mm = estimate_power(dev.arch(), mm.counters, mm.time_ms);
  const auto p_red = estimate_power(dev.arch(), red.counters, red.time_ms);
  const double mm_dram_share = p_mm.dram_w / p_mm.total_w;
  const double red_dram_share = p_red.dram_w / p_red.total_w;
  EXPECT_GT(red_dram_share, mm_dram_share);
}

TEST(Power, TotalIsSumOfComponents) {
  const Device dev(gtx580());
  const auto agg = kernels::simulate_reduction(dev, 1, 1 << 20);
  const auto p = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  EXPECT_NEAR(p.total_w,
              p.idle_w + p.core_w + p.dram_w + p.l2_w + p.shared_w, 1e-9);
}

TEST(Power, ScalesWithActivityNotJustTime) {
  // The same counters over double the time halve the dynamic power.
  const Device dev(gtx580());
  const auto agg = kernels::simulate_matmul(dev, 256);
  const auto fast = estimate_power(dev.arch(), agg.counters, agg.time_ms);
  const auto slow =
      estimate_power(dev.arch(), agg.counters, 2.0 * agg.time_ms);
  EXPECT_NEAR(slow.dram_w, 0.5 * fast.dram_w, 1e-9);
  EXPECT_LT(slow.total_w, fast.total_w);
}

}  // namespace
}  // namespace bf::gpusim
