// Tests for the ASCII reporting helpers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "report/ascii.hpp"

namespace bf::report {
namespace {

TEST(BarChart, ScalesToLargestValue) {
  const auto s = bar_chart("importance", {{"big", 10.0}, {"half", 5.0}});
  EXPECT_NE(s.find("importance"), std::string::npos);
  EXPECT_NE(s.find("big"), std::string::npos);
  // The largest bar has the full width of '#'s; the half bar about half.
  const auto count_hashes = [&](const std::string& label) {
    const std::size_t line_start = s.find(label);
    const std::size_t line_end = s.find('\n', line_start);
    const std::string line = s.substr(line_start, line_end - line_start);
    return std::count(line.begin(), line.end(), '#');
  };
  EXPECT_EQ(count_hashes("big"), 48);
  EXPECT_EQ(count_hashes("half"), 24);
}

TEST(BarChart, NegativeValuesMarked) {
  const auto s = bar_chart("t", {{"neg", -2.0}, {"pos", 2.0}});
  EXPECT_NE(s.find("-##"), std::string::npos);
}

TEST(BarChart, EmptyInputJustTitle) {
  EXPECT_EQ(bar_chart("title", {}), "title\n");
}

TEST(XyPlot, ContainsGlyphsAndAxes) {
  Series a;
  a.name = "measured";
  a.x = {1, 2, 3, 4};
  a.y = {1, 4, 9, 16};
  Series b;
  b.name = "predicted";
  b.x = {1, 2, 3, 4};
  b.y = {1.2, 3.9, 9.5, 15.0};
  const auto s = xy_plot("fit", {a, b});
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
  EXPECT_NE(s.find("measured"), std::string::npos);
  EXPECT_NE(s.find("predicted"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(XyPlot, LogXAxisAnnotated) {
  Series a;
  a.name = "s";
  a.x = {64, 1024, 16384};
  a.y = {1, 2, 3};
  const auto s = xy_plot("t", {a}, 32, 8, /*log_x=*/true);
  EXPECT_NE(s.find("log2"), std::string::npos);
}

TEST(XyPlot, MismatchedSeriesRejected) {
  Series bad;
  bad.name = "bad";
  bad.x = {1, 2};
  bad.y = {1};
  EXPECT_THROW(xy_plot("t", {bad}), Error);
  EXPECT_THROW(xy_plot("t", {}, 4, 2), Error);  // too small
}

TEST(Table, AlignsColumns) {
  const auto s = table({"counter", "value"},
                       {{"ipc", "0.88"}, {"achieved_occupancy", "0.97"}});
  EXPECT_NE(s.find("counter"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Every data line must be at least as wide as the widest label.
  EXPECT_NE(s.find("achieved_occupancy  0.97"), std::string::npos);
}

TEST(Table, RaggedRowRejected) {
  EXPECT_THROW(table({"a", "b"}, {{"only"}}), Error);
}

TEST(Cell, FormatsFixedPrecision) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(10.0, 0), "10");
}

}  // namespace
}  // namespace bf::report
