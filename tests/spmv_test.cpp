// Tests for the CSR SpMV kernel and its irregularity dials.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/engine.hpp"
#include "kernels/spmv.hpp"
#include "profiling/profiler.hpp"
#include "profiling/workloads.hpp"

namespace bf::kernels {
namespace {

using gpusim::Device;
using gpusim::Event;
using gpusim::gtx580;

SpmvPattern pattern(int nnz, double skew, double locality) {
  SpmvPattern p;
  p.avg_nnz_per_row = nnz;
  p.row_skew = skew;
  p.locality = locality;
  return p;
}

TEST(Spmv, GeometryAndValidation) {
  const SpmvCsrKernel k(10000, pattern(16, 0.0, 0.5));
  EXPECT_EQ(k.geometry().num_blocks(), (10000 + 255) / 256);
  EXPECT_THROW(SpmvCsrKernel(0, pattern(16, 0, 0.5)), Error);
  EXPECT_THROW(SpmvCsrKernel(100, pattern(0, 0, 0.5)), Error);
  EXPECT_THROW(SpmvCsrKernel(100, pattern(16, 2.0, 0.5)), Error);
}

TEST(Spmv, PatternIsDeterministic) {
  const SpmvCsrKernel a(5000, pattern(16, 0.3, 0.5));
  const SpmvCsrKernel b(5000, pattern(16, 0.3, 0.5));
  for (std::int64_t r = 0; r < 100; ++r) {
    ASSERT_EQ(a.nnz_of_row(r), b.nnz_of_row(r));
    for (int j = 0; j < a.nnz_of_row(r); j += 5) {
      ASSERT_EQ(a.col_of(r, j), b.col_of(r, j));
    }
  }
}

TEST(Spmv, AverageNnzNearTarget) {
  const int rows = 20000;
  const SpmvCsrKernel k(rows, pattern(16, 0.0, 0.5));
  const double avg =
      static_cast<double>(k.total_nnz()) / static_cast<double>(rows);
  EXPECT_NEAR(avg, 16.0, 3.0);
}

TEST(Spmv, ReferenceMatchesPattern) {
  const int rows = 64;
  const SpmvCsrKernel k(rows, pattern(4, 0.0, 1.0));
  const std::vector<double> ones(static_cast<std::size_t>(rows), 1.0);
  const auto y = spmv_reference(k, rows, ones);
  // With x = 1, y[r] equals the row's nnz.
  for (int r = 0; r < rows; ++r) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(r)], k.nnz_of_row(r));
  }
}

TEST(Spmv, RowSkewCausesDivergence) {
  const Device dev(gtx580());
  const auto uniform = dev.run(SpmvCsrKernel(1 << 16, pattern(16, 0.0, 0.5)));
  const auto skewed = dev.run(SpmvCsrKernel(1 << 16, pattern(16, 0.8, 0.5)));
  const double weff_u =
      uniform.counters.get(Event::kThreadInstExecuted) /
      (uniform.counters.get(Event::kInstExecuted) * 32.0);
  const double weff_s =
      skewed.counters.get(Event::kThreadInstExecuted) /
      (skewed.counters.get(Event::kInstExecuted) * 32.0);
  // The heavy-head distribution leaves most lanes idle on long rows.
  EXPECT_LT(weff_s, 0.75 * weff_u);
  EXPECT_GT(skewed.counters.get(Event::kDivergentBranch),
            uniform.counters.get(Event::kDivergentBranch));
}

TEST(Spmv, LocalityImprovesGatherCoalescing) {
  const Device dev(gtx580());
  const auto local = dev.run(SpmvCsrKernel(1 << 16, pattern(16, 0.0, 1.0)));
  const auto scattered =
      dev.run(SpmvCsrKernel(1 << 16, pattern(16, 0.0, 0.0)));
  // Transactions per load request: scattered gathers need far more.
  const double tpr_local =
      local.counters.get(Event::kGlobalLoadTransaction) /
      local.counters.get(Event::kGldRequest);
  const double tpr_scattered =
      scattered.counters.get(Event::kGlobalLoadTransaction) /
      scattered.counters.get(Event::kGldRequest);
  EXPECT_GT(tpr_scattered, 1.5 * tpr_local);
  EXPECT_GT(scattered.time_ms, local.time_ms);
}

TEST(Spmv, WorkloadRegisteredAndRuns) {
  const auto w = profiling::workload_by_name("spmv_n16_s00_l50");
  const Device dev(gtx580());
  profiling::Profiler profiler;
  const auto r = profiler.profile(w, dev, 1 << 15);
  EXPECT_GT(r.time_ms, 0.0);
  EXPECT_GT(r.counters.at("gld_request"), 0.0);
}

}  // namespace
}  // namespace bf::kernels
