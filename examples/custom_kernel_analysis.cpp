// Analysing your own kernel with BlackForest.
//
// This example defines a new workload in user code — a batched AXPY-like
// kernel whose stride is deliberately configurable — registers it as a
// profiling::Workload, and lets the pipeline find the (injected)
// coalescing bottleneck. It demonstrates everything a downstream user
// needs: implement gpusim::TraceKernel, wrap it in a Workload, analyse.
//
// Build & run:  ./build/examples/custom_kernel_analysis
#include <cstdio>

#include "core/pipeline.hpp"
#include "gpusim/engine.hpp"
#include "kernels/kernel_base.hpp"
#include "profiling/workloads.hpp"

namespace {

using namespace bf;

/// y[i*stride] += a * x[i*stride]: stride > 1 wrecks coalescing.
class StridedAxpyKernel final : public gpusim::TraceKernel {
 public:
  StridedAxpyKernel(std::int64_t n, int stride)
      : n_(n), stride_(stride) {
    kernels::AddressSpace mem;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(n) * stride * 4;
    x_base_ = mem.alloc(bytes);
    y_base_ = mem.alloc(bytes);
  }

  std::string name() const override { return "stridedAxpy"; }

  gpusim::LaunchGeometry geometry() const override {
    gpusim::LaunchGeometry g;
    g.grid_x = static_cast<int>((n_ + 255) / 256);
    g.block_x = 256;
    g.registers_per_thread = 12;
    return g;
  }

  void emit_warp(int block, int warp,
                 gpusim::TraceSink& sink) const override {
    const auto idx = [&](int lane) {
      return (static_cast<std::int64_t>(block) * 256 + warp * 32 + lane) *
             stride_;
    };
    const std::uint32_t active = kernels::mask_where(
        [&](int lane) { return idx(lane) < n_ * stride_; });
    if (active == 0) return;
    sink.alu(gpusim::kFullMask, 2, gpusim::Op::kIAlu);
    sink.global_load(active, kernels::lane_addrs([&](int lane) {
      return x_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
    }));
    sink.alu(active, 1, gpusim::Op::kFAlu);
    sink.global_store(active, kernels::lane_addrs([&](int lane) {
      return y_base_ + 4u * static_cast<std::uint32_t>(idx(lane));
    }));
  }

 private:
  std::int64_t n_;
  int stride_;
  std::uint32_t x_base_ = 0;
  std::uint32_t y_base_ = 0;
};

profiling::Workload strided_axpy_workload(int stride) {
  profiling::Workload w;
  w.name = "stridedAxpy_s" + std::to_string(stride);
  w.run = [stride](const gpusim::Device& device, double problem_size) {
    gpusim::AggregateResult agg;
    const StridedAxpyKernel kernel(
        static_cast<std::int64_t>(problem_size), stride);
    agg.add(device.run(kernel));
    return agg;
  };
  return w;
}

}  // namespace

int main() {
  using namespace bf;
  for (const int stride : {1, 8}) {
    core::PipelineConfig config;
    config.workload = strided_axpy_workload(stride);
    config.arch = gpusim::gtx580();
    config.sizes = profiling::log2_sizes(1 << 14, 1 << 22, 30, 256);
    config.model.exclude = {"power_avg_w", "flop_sp_efficiency"};

    const auto outcome = core::run_analysis(config);
    std::printf("---- stride %d ----\n", stride);
    std::printf("time at n=2^22: %.3f ms\n",
                outcome.data.at(outcome.data.num_rows() - 1, "time_ms"));
    std::printf("gld_efficiency: %.2f\n",
                outcome.data.at(outcome.data.num_rows() - 1,
                                "gld_efficiency"));
    std::printf("%s\n", core::to_text(outcome.report).c_str());
  }
  std::printf("note how the stride-8 variant surfaces uncoalesced-access/"
              "bandwidth patterns that the unit-stride variant lacks.\n");
  return 0;
}
