// The CUDA SDK reduction optimisation ladder through BlackForest's eyes.
//
// Runs reduce0 .. reduce6 and shows how the dominant bottleneck pattern
// shifts as each optimisation removes the previous limiter — the
// paper's §5 story (divergence -> bank conflicts -> idle threads ->
// bandwidth) told end to end.
//
// Build & run:  ./build/examples/optimization_ladder
#include <cstdio>

#include "core/pipeline.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  std::printf("%-9s %-12s %-10s %-28s %s\n", "kernel", "time@2^22(ms)",
              "speedup", "top counter", "dominant pattern");

  double baseline = 0.0;
  for (int variant = 0; variant <= 7; ++variant) {
    core::PipelineConfig config;
    config.workload = profiling::reduce_workload(variant);
    config.arch = gpusim::gtx580();
    config.sizes = profiling::log2_sizes(1 << 14, 1 << 22, 25, 256);
    config.model.exclude = {"power_avg_w", "flop_sp_efficiency"};
    config.model.forest.n_trees = 250;

    const auto outcome = core::run_analysis(config);
    const double t =
        outcome.data.at(outcome.data.num_rows() - 1, "time_ms");
    if (variant == 0) baseline = t;

    const auto& findings = outcome.report.findings;
    const char* pattern =
        outcome.report.ranked_patterns.empty()
            ? "-"
            : core::pattern_name(outcome.report.ranked_patterns[0].first);
    std::printf("%-9s %-12.4f %-10.2f %-28s %s\n",
                config.workload.name.c_str(), t, baseline / t,
                findings.empty() ? "-" : findings[0].counter.c_str(),
                pattern);
  }

  std::printf("\nbank-conflict events along the ladder (2^22 elements):\n");
  const gpusim::Device device(gpusim::gtx580());
  profiling::Profiler profiler;
  for (int variant = 0; variant <= 7; ++variant) {
    const auto r = profiler.profile(
        profiling::reduce_workload(variant), device, 1 << 22);
    std::printf("  reduce%d: l1_shared_bank_conflict = %.0f, "
                "divergent_branch = %.0f\n",
                variant, r.counters.at("l1_shared_bank_conflict"),
                r.counters.at("divergent_branch"));
  }
  return 0;
}
