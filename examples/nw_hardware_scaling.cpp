// Hardware scaling (paper §6.2): train on one GPU, predict another.
//
// Needleman-Wunsch is the paper's hard case: the important counters on
// Fermi (L1/L2 caching) differ from Kepler's (throughput), so the
// similarity test fails and the mixed-importance workaround engages.
//
// Build & run:  ./build/examples/nw_hardware_scaling
#include <cstdio>

#include "core/predictor.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;
  const auto workload = profiling::nw_workload();
  const auto sizes = profiling::linear_sizes(64, 4096, 64);

  profiling::SweepOptions sweep_opt;
  sweep_opt.machine_characteristics = true;  // inject Table 2 columns

  std::printf("profiling %s on gtx580 (training GPU)...\n",
              workload.name.c_str());
  const gpusim::Device fermi(gpusim::gtx580());
  sweep_opt.profiler.seed = 1;
  const auto source = profiling::sweep(workload, fermi, sizes, sweep_opt);

  std::printf("profiling %s on k20m (target GPU)...\n",
              workload.name.c_str());
  const gpusim::Device kepler(gpusim::kepler_k20m());
  sweep_opt.profiler.seed = 2;
  const auto target = profiling::sweep(workload, kepler, sizes, sweep_opt);

  core::HardwareScalingOptions options;
  options.model.exclude = {"power_avg_w", "flop_sp_efficiency"};
  const auto result =
      core::HardwareScalingPredictor::predict(source, target, options);

  std::printf("\nimportance similarity between the GPUs: %.2f\n",
              result.similarity);
  std::printf("strategy: %s\n", result.used_mixed_variables
                                    ? "mixed-importance workaround"
                                    : "straightforward");
  std::printf("predictors used:");
  for (const auto& v : result.variables) std::printf(" %s", v.c_str());

  std::printf("\n\npredictions on the k20m test split:\n");
  std::printf("%-8s %-14s %-14s %s\n", "len", "predicted_ms",
              "measured_ms", "error");
  for (std::size_t i = 0; i < result.series.sizes.size(); ++i) {
    std::printf("%-8.0f %-14.4f %-14.4f %+.1f%%\n", result.series.sizes[i],
                result.series.predicted_ms[i],
                result.series.measured_ms[i],
                100.0 *
                    (result.series.predicted_ms[i] -
                     result.series.measured_ms[i]) /
                    result.series.measured_ms[i]);
  }
  std::printf("\nmedian |error| %.1f%%, explained variance %.1f%%\n",
              result.series.median_abs_pct_error,
              100.0 * result.series.explained_variance);
  return 0;
}
