// Quickstart: the paper's §5 walk-through in ~40 lines of user code.
//
// Profile a kernel (reduce1) over a problem-size sweep on a simulated
// GTX580, build the random-forest performance model, and print the
// bottleneck report with PCA refinement.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "profiling/workloads.hpp"

int main() {
  using namespace bf;

  // 1. Describe the analysis: which kernel, which GPU, which sizes.
  core::PipelineConfig config;
  config.workload = profiling::reduce_workload(/*variant=*/1);
  config.arch = gpusim::gtx580();
  config.sizes = profiling::log2_sizes(1 << 14, 1 << 22, 40, 256);

  // 2. Run the five-stage pipeline: collect -> model -> importance ->
  //    PCA -> interpret.
  const core::AnalysisOutcome outcome = core::run_analysis(config);

  // 3. Read the results.
  std::printf("collected %zu runs; forest explains %.1f%% of variance\n\n",
              outcome.data.num_rows(),
              outcome.model.pct_var_explained());

  std::printf("most influential counters:\n");
  const auto importance = outcome.model.importance();
  for (std::size_t i = 0; i < importance.size() && i < 5; ++i) {
    std::printf("  %-28s %%IncMSE %.2f\n", importance[i].name.c_str(),
                importance[i].pct_inc_mse);
  }

  std::printf("\n%s", core::to_text(outcome.report).c_str());

  std::printf("\nPCA refinement (%zu components, %.0f%% of variance):\n",
              outcome.pca.components.size(),
              100.0 * outcome.pca.variance_covered);
  for (const auto& comp : outcome.pca.components) {
    std::printf("  %s\n", comp.label.c_str());
  }
  return 0;
}
