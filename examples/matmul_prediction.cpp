// Problem-scaling prediction (paper §6.1.1): train on a sweep of matrix
// sizes, model the retained counters as functions of the size, and
// predict the execution time of sizes the forest never saw.
//
// Build & run:  ./build/examples/matmul_prediction [max_train_size]
#include <cstdio>

#include "common/string_util.hpp"
#include "core/predictor.hpp"
#include "profiling/sweep.hpp"
#include "profiling/workloads.hpp"

int main(int argc, char** argv) {
  using namespace bf;
  const int max_n =
      argc > 1 ? static_cast<int>(parse_int(argv[1])) : 1024;

  const gpusim::Device device(gpusim::gtx580());
  const auto workload = profiling::matmul_workload();

  // Collect the training sweep.
  const auto sizes = profiling::log2_sizes(32, max_n, 20, 16);
  std::printf("profiling %zu matrix sizes in [32, %d] on %s...\n",
              sizes.size(), max_n, device.arch().name.c_str());
  const auto sweep = profiling::sweep(workload, device, sizes);

  // Build the predictor: forest + top-variable selection + per-counter
  // GLM/MARS models in terms of the matrix size.
  core::ProblemScalingOptions options;
  options.model.exclude = {"power_avg_w", "flop_sp_efficiency"};
  const auto predictor =
      core::ProblemScalingPredictor::build(sweep, options);

  std::printf("retained variables:");
  for (const auto& v : predictor.retained()) std::printf(" %s", v.c_str());
  std::printf("\ncounter models: average R^2 %.4f\n\n",
              predictor.counter_models().average_r2());

  // Predict sizes that were never profiled, then verify.
  profiling::Profiler profiler;
  std::printf("%-8s %-14s %-14s %s\n", "n", "predicted_ms", "measured_ms",
              "error");
  // Sizes strictly inside the training range: a random forest cannot
  // extrapolate beyond the response values it has seen (leaves predict
  // training means), so predictions at the extreme edges degrade.
  for (const double n : {112.0, 208.0, 416.0, 608.0, 800.0, 928.0}) {
    if (n > max_n) continue;
    const double predicted = predictor.predict_time(n);
    const double measured = profiler.profile(workload, device, n).time_ms;
    std::printf("%-8.0f %-14.4f %-14.4f %+.1f%%\n", n, predicted, measured,
                100.0 * (predicted - measured) / measured);
  }
  return 0;
}
