// BlackForest on a CPU (paper §7: a unified modelling approach for
// heterogeneous platforms). Same core pipeline, different substrate:
// perf-style counters from the cpusim multicore model.
//
// Build & run:  ./build/examples/cpu_analysis
#include <cstdio>

#include "core/bottleneck.hpp"
#include "core/model.hpp"
#include "cpusim/cpu_workloads.hpp"

int main() {
  using namespace bf;
  const cpusim::CpuDevice device(cpusim::xeon_e5_2620());

  std::vector<double> sizes;
  for (int n = 64; n <= 768; n += 32) sizes.push_back(n);
  std::printf("profiling cpu_matmul on %s (%zu sizes)...\n",
              device.spec().name.c_str(), sizes.size());
  const auto sweep =
      cpusim::cpu_sweep(cpusim::cpu_matmul_workload(), device, sizes);

  core::ModelOptions opt;
  opt.forest.n_trees = 300;
  const auto model = core::BlackForestModel::fit(sweep, opt);
  std::printf("forest explains %.1f%% of variance (OOB)\n\n",
              model.pct_var_explained());
  std::printf("most influential CPU counters:\n");
  const auto imp = model.importance();
  for (std::size_t i = 0; i < imp.size() && i < 6; ++i) {
    std::printf("  %-22s %%IncMSE %.2f\n", imp[i].name.c_str(),
                imp[i].pct_inc_mse);
  }

  // The same bottleneck classifier runs, though CPU counter names land
  // in the unclassified bucket by design — this prints the raw ranking
  // a CPU-specific pattern table would build on.
  std::printf("\ncontrast across CPU models (n = 512):\n");
  for (const auto& spec :
       {cpusim::xeon_e5_2620(), cpusim::core_i7_4770k()}) {
    const cpusim::CpuDevice dev(spec);
    const auto r =
        dev.run(*cpusim::cpu_matmul_workload().make(512, spec));
    std::printf("  %-14s %8.3f ms  ipc %.2f  llc_misses %.0f\n",
                spec.name.c_str(), r.time_ms, r.counters.at("ipc"),
                r.counters.at("llc_misses"));
  }
  return 0;
}
